(* Tests for the exploration telemetry subsystem: crash-space coverage
   accounting (jobs-invariance, ambient attribution, rendering), live
   progress streams, trace profiles, and the benchmark regression
   gate.  The determinism contract is asserted end to end: coverage
   snapshots are byte-identical across --jobs counts, and a race
   report is byte-identical with all telemetry on vs off. *)

module Coverage = Observe.Coverage
module Progress = Observe.Progress
module Profile = Observe.Profile
module Metrics = Observe.Metrics
module Trace = Observe.Trace
module Runner = Pm_harness.Runner
module Report = Pm_harness.Report
module Program = Pm_harness.Program
module Engine = Pm_harness.Engine
module Json = Pm_corpus.Json
module Bench_gate = Pm_corpus.Bench_gate

open Pm_runtime

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let toy =
  Program.make ~name:"toy"
    ~setup:(fun () ->
      let a = Pmem.alloc ~align:64 16 in
      Pmem.set_root 0 a)
    ~pre:(fun () ->
      let a = Pmem.get_root 0 in
      Pmem.store ~label:"racy" a 1L;
      Pmem.store ~label:"safe" ~atomic:Px86.Access.Release (a + 8) 2L;
      Pmem.clflush a;
      Pmem.mfence ())
    ~post:(fun () ->
      let a = Pmem.get_root 0 in
      ignore (Pmem.load a);
      ignore (Pmem.load ~atomic:Px86.Access.Acquire (a + 8)))
    ()

(* Every test leaves the global observe state as it found it. *)
let quiesce () =
  Metrics.disable ();
  Metrics.reset ();
  Coverage.disable ();
  Coverage.reset ();
  ignore (Progress.stop ());
  Trace.stop ();
  Trace.clear ()

(* The coverage snapshot in its exported JSONL form: the byte string
   the jobs-invariance contract quantifies over. *)
let coverage_jsonl () =
  String.concat "\n"
    (List.map (fun s -> Json.encode_obj (Coverage.fields s)) (Coverage.snapshot ()))

(* ------------------------------------------------------------------ *)
(* Coverage                                                             *)

let test_coverage_disabled_is_noop () =
  quiesce ();
  Coverage.with_program "p" (fun () ->
      Coverage.scenario_started ();
      Coverage.plan_exercised 0;
      Coverage.crash_point 0);
  check_int "nothing recorded while disabled" 0
    (List.length (Coverage.snapshot ()));
  quiesce ()

let test_coverage_requires_ambient_program () =
  quiesce ();
  Coverage.enable ();
  (* outside with_program: dropped *)
  Coverage.scenario_started ();
  Coverage.plan_exercised 3;
  Coverage.line_materialized 1;
  check_int "hooks without ambient program are dropped" 0
    (List.length (Coverage.snapshot ()));
  quiesce ()

let test_coverage_accumulates_and_merges () =
  quiesce ();
  Coverage.enable ();
  (* Same program from two domains: counters sum, index sets union. *)
  let work lo =
    Coverage.with_program "prog" (fun () ->
        for i = lo to lo + 2 do
          Coverage.scenario_started ();
          Coverage.plan_exercised i;
          Coverage.crash_point i;
          Coverage.prefix_expanded ();
          Coverage.pruned `Coherence;
          Coverage.line_materialized (i mod 2)
        done)
  in
  let d = Domain.spawn (fun () -> work 3) in
  work 0;
  Domain.join d;
  (match Coverage.find "prog" with
  | None -> Alcotest.fail "program not in snapshot"
  | Some s ->
      check_int "scenarios sum" 6 s.Coverage.scenarios;
      Alcotest.(check (list int))
        "plan indices union" [ 0; 1; 2; 3; 4; 5 ] s.Coverage.plan_indices;
      Alcotest.(check (list int))
        "crash points union" [ 0; 1; 2; 3; 4; 5 ] s.Coverage.crash_points;
      check_int "expansions sum" 6 s.Coverage.prefix_expansions;
      check_int "pruned coherence sum" 6 s.Coverage.pruned_coherence;
      check_int "pruned persisted zero" 0 s.Coverage.pruned_persisted;
      check_int "lines deduplicated" 2 s.Coverage.lines_materialized);
  quiesce ()

let test_coverage_ambient_restored_on_exception () =
  quiesce ();
  Coverage.enable ();
  (try
     Coverage.with_program "outer" (fun () ->
         try Coverage.with_program "inner" (fun () -> failwith "boom")
         with Failure _ ->
           (* ambient must be back to "outer" here *)
           Coverage.scenario_started ())
   with Failure _ -> ());
  (match Coverage.find "outer" with
  | Some s -> check_int "attributed to restored ambient" 1 s.Coverage.scenarios
  | None -> Alcotest.fail "outer not recorded");
  check "inner recorded nothing" true (Coverage.find "inner" = None);
  quiesce ()

(* The same program under two model variants accumulates into separate
   buckets, and the snapshot names each bucket's variant. *)
let test_coverage_per_variant () =
  quiesce ();
  Coverage.enable ();
  Coverage.with_program "prog" (fun () -> Coverage.scenario_started ());
  Coverage.with_program ~variant:"fence-nop" "prog" (fun () ->
      Coverage.scenario_started ();
      Coverage.scenario_started ());
  (match Coverage.find "prog" with
  | Some s ->
      check_int "default bucket isolated" 1 s.Coverage.scenarios;
      check_str "default bucket label" Coverage.default_variant
        s.Coverage.variant
  | None -> Alcotest.fail "default bucket missing");
  (match Coverage.find ~variant:"fence-nop" "prog" with
  | Some s -> check_int "variant bucket isolated" 2 s.Coverage.scenarios
  | None -> Alcotest.fail "variant bucket missing");
  check "fields carry the variant" true
    (List.exists
       (fun s -> List.assoc "variant" (Coverage.fields s) = `S "fence-nop")
       (Coverage.snapshot ()));
  quiesce ()

let test_indices_label () =
  check_str "empty" "-" (Coverage.indices_label []);
  check_str "singleton" "7" (Coverage.indices_label [ 7 ]);
  check_str "range compaction" "0-2,5"
    (Coverage.indices_label [ 0; 1; 2; 5 ]);
  check_str "crash-at-end pseudo-index" "0-1,end"
    (Coverage.indices_label [ -1; 0; 1 ]);
  check_str "only end" "end" (Coverage.indices_label [ -1 ])

let test_coverage_jobs_invariant () =
  quiesce ();
  Coverage.enable ();
  ignore (Runner.model_check_outcome ~jobs:1 toy);
  let j1 = coverage_jsonl () in
  Coverage.reset ();
  ignore (Runner.model_check_outcome ~jobs:4 toy);
  let j4 = coverage_jsonl () in
  check "toy explored something" true (String.length j1 > 0);
  check_str "coverage byte-identical for jobs=1 vs jobs=4" j1 j4;
  quiesce ()

let test_coverage_counts_match_engine () =
  quiesce ();
  Coverage.enable ();
  let o = Runner.model_check_outcome ~jobs:2 toy in
  (match Coverage.find "toy" with
  | None -> Alcotest.fail "toy not in coverage snapshot"
  | Some s ->
      check_int "one coverage scenario per engine scenario"
        o.Runner.o_stats.Engine.scenarios s.Coverage.scenarios;
      (* model checking exercises every flush point plus crash-at-end:
         plan indices 0..n-1 and the -1 pseudo-index *)
      check_int "plan indices = scenarios"
        o.Runner.o_stats.Engine.scenarios
        (List.length s.Coverage.plan_indices);
      check "crash-at-end exercised" true
        (List.mem (-1) s.Coverage.plan_indices);
      check "every plan fired its crash" true
        (s.Coverage.crash_points = s.Coverage.plan_indices);
      check "crashes materialized lines" true
        (s.Coverage.lines_materialized > 0));
  quiesce ()

(* ------------------------------------------------------------------ *)
(* Report byte-identity: all telemetry on vs off                        *)

let test_report_identical_with_telemetry_on () =
  quiesce ();
  let plain =
    Report.to_string (Runner.model_check_outcome ~jobs:2 toy).Runner.o_report
  in
  let tmp = Filename.temp_file "yashme_progress" ".jsonl" in
  Metrics.enable ();
  Coverage.enable ();
  Progress.start ~heartbeat:false ~jsonl:tmp ();
  Trace.start ();
  let loud =
    Report.to_string (Runner.model_check_outcome ~jobs:2 toy).Runner.o_report
  in
  ignore (Progress.stop ());
  Sys.remove tmp;
  check_str "report byte-identical with telemetry on" plain loud;
  quiesce ()

(* ------------------------------------------------------------------ *)
(* Progress                                                             *)

let test_progress_inactive_is_noop () =
  quiesce ();
  Progress.tick ~races:3 ~faulted:true ();
  check_int "stop while inactive reports zero emissions" 0 (Progress.stop ())

let test_progress_jsonl_stream () =
  quiesce ();
  let tmp = Filename.temp_file "yashme_progress" ".jsonl" in
  Progress.start ~heartbeat:false ~jsonl:tmp ();
  Progress.batch 3;
  Progress.tick ~races:1 ~faulted:false ();
  Progress.tick ~races:0 ~faulted:true ();
  Progress.tick ~races:2 ~faulted:false ();
  let emitted = Progress.stop () in
  check "at least the final emission" true (emitted >= 1);
  (match Trace.check_file tmp with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("progress stream not well-formed JSONL: " ^ e));
  let ic = open_in tmp in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  check_int "one line per emission" emitted (List.length !lines);
  (match Json.decode_obj (List.hd !lines) with
  | Error e -> Alcotest.fail e
  | Ok fields ->
      check "final line: done = 3" true
        (List.assoc "done" fields = `I 3);
      check "final line: total = 3" true
        (List.assoc "total" fields = `I 3);
      check "final line: races = 3" true
        (List.assoc "races" fields = `I 3);
      check "final line: faults = 1" true
        (List.assoc "faults" fields = `I 1));
  Sys.remove tmp;
  quiesce ()

let test_progress_engine_ticks () =
  quiesce ();
  let tmp = Filename.temp_file "yashme_progress" ".jsonl" in
  Progress.start ~heartbeat:false ~jsonl:tmp ();
  let o = Runner.model_check_outcome ~jobs:2 toy in
  ignore (Progress.stop ());
  let ic = open_in tmp in
  let last = ref "" in
  (try
     while true do
       last := input_line ic
     done
   with End_of_file -> close_in ic);
  (match Json.decode_obj !last with
  | Error e -> Alcotest.fail e
  | Ok fields ->
      let scenarios = o.Runner.o_stats.Engine.scenarios in
      check "engine announced the batch" true
        (List.assoc "total" fields = `I scenarios);
      check "every scenario ticked" true
        (List.assoc "done" fields = `I scenarios));
  Sys.remove tmp;
  quiesce ()

(* ------------------------------------------------------------------ *)
(* Profile                                                              *)

let ev ?(cat = "") ?(pid = 0) ?(tid = 0) ~ts ~dur name =
  { Trace.name; cat; ph = Trace.Complete; ts_us = ts; dur_us = dur; pid; tid;
    args = [] }

let test_profile_self_time () =
  (* parent [0,120) with children [10,40) and [50,70): self = 70 *)
  let events =
    [ ev ~cat:"a" ~ts:0 ~dur:120 "parent";
      ev ~cat:"b" ~ts:10 ~dur:30 "child";
      ev ~cat:"b" ~ts:50 ~dur:20 "child" ]
  in
  let rows = Profile.by_name events in
  let find k = List.find (fun r -> r.Profile.r_key = k) rows in
  let parent = find "parent" and child = find "child" in
  check_int "parent total inclusive" 120 parent.Profile.r_total_us;
  check_int "parent self excludes children" 70 parent.Profile.r_self_us;
  check_int "child count" 2 child.Profile.r_count;
  check_int "leaf self = total" 50 child.Profile.r_self_us;
  check_str "sorted by self descending" "parent"
    (List.hd rows).Profile.r_key;
  let cats = Profile.by_cat events in
  check_int "category aggregation" 2 (List.length cats)

let test_profile_lanes_isolated () =
  (* identical intervals in different lanes must not nest *)
  let events =
    [ ev ~tid:0 ~ts:0 ~dur:100 "a"; ev ~tid:1 ~ts:10 ~dur:30 "b" ]
  in
  let rows = Profile.by_name events in
  let find k = List.find (fun r -> r.Profile.r_key = k) rows in
  check_int "no cross-lane nesting" 100 (find "a").Profile.r_self_us;
  let lanes = Profile.lanes events in
  check_int "two lanes" 2 (List.length lanes);
  check_int "lane busy = top-level duration" 100
    (List.hd lanes).Profile.l_busy_us

let test_profile_parse_roundtrip () =
  quiesce ();
  Trace.start ();
  Observe.Span.with_ ~cat:"t" "outer" (fun () ->
      Observe.Span.with_ ~cat:"t" "inner" (fun () -> ());
      Trace.instant ~cat:"t" "mark");
  Trace.stop ();
  let n_complete =
    List.length
      (List.filter (fun (e : Trace.event) -> e.Trace.ph = Trace.Complete)
         (Trace.events ()))
  in
  List.iter
    (fun suffix ->
      let tmp = Filename.temp_file "yashme_profile" suffix in
      Trace.write tmp;
      (match Profile.parse_file tmp with
      | Error e -> Alcotest.fail (suffix ^ ": " ^ e)
      | Ok events ->
          check_int (suffix ^ ": all events parsed") 3 (List.length events);
          check_int
            (suffix ^ ": complete spans preserved")
            n_complete
            (List.length
               (List.filter
                  (fun (e : Trace.event) -> e.Trace.ph = Trace.Complete)
                  events)));
      Sys.remove tmp)
    [ ".json"; ".jsonl" ];
  quiesce ()

let test_profile_rejects_empty_and_garbage () =
  let tmp = Filename.temp_file "yashme_profile" ".json" in
  (match Profile.parse_file tmp with
  | Error e -> check "empty file positioned error" true
        (String.length e > 0 && String.sub e 0 6 = "offset")
  | Ok _ -> Alcotest.fail "empty file accepted");
  let oc = open_out tmp in
  output_string oc "{\"traceEvents\":[{\"name\":\"x\"";
  close_out oc;
  (match Profile.parse_file tmp with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated file accepted");
  Sys.remove tmp

(* ------------------------------------------------------------------ *)
(* Bench gate                                                           *)

let baseline_jsonl =
  "{\"bench\":\"CCEH\",\"jobs\":2,\"ops_per_s\":1000.0}\n\
   {\"bench\":\"FAST_FAIR\",\"jobs\":2,\"ops_per_s\":2000.0}\n"

let entries s =
  match Bench_gate.of_jsonl s with
  | Ok es -> es
  | Error e -> Alcotest.fail e

let test_bench_gate_passes_within_tolerance () =
  let baseline = entries baseline_jsonl in
  let current =
    entries
      "{\"bench\":\"CCEH\",\"jobs\":2,\"ops_per_s\":950.0}\n\
       {\"bench\":\"FAST_FAIR\",\"jobs\":2,\"ops_per_s\":2100.0}\n"
  in
  let o = Bench_gate.diff ~tolerance:10. ~baseline ~current () in
  check "within tolerance passes" true o.Bench_gate.passed;
  check_int "one verdict per baseline entry" 2
    (List.length o.Bench_gate.verdicts);
  check "self-diff is exact" true
    (Bench_gate.diff ~tolerance:0. ~baseline ~current:baseline ())
      .Bench_gate.passed

let test_bench_gate_fails_on_regression () =
  let baseline = entries baseline_jsonl in
  let current =
    entries
      "{\"bench\":\"CCEH\",\"jobs\":2,\"ops_per_s\":800.0}\n\
       {\"bench\":\"FAST_FAIR\",\"jobs\":2,\"ops_per_s\":2000.0}\n"
  in
  let o = Bench_gate.diff ~tolerance:10. ~baseline ~current () in
  check "20%% drop beyond 10%% tolerance fails" true (not o.Bench_gate.passed);
  let v =
    List.find (fun v -> v.Bench_gate.v_regressed) o.Bench_gate.verdicts
  in
  check_str "regressed bench identified" "CCEH[jobs=2]" v.Bench_gate.v_key;
  check "delta is -20%%" true (abs_float (v.Bench_gate.v_delta_pct +. 20.) < 1e-9);
  check "rendered outcome says FAIL" true
    (let s = Bench_gate.outcome_to_string o in
     String.length s >= 4 && String.sub s (String.length s - 4) 4 = "FAIL")

let test_bench_gate_fails_on_missing () =
  let baseline = entries baseline_jsonl in
  let current = entries "{\"bench\":\"CCEH\",\"jobs\":2,\"ops_per_s\":1000.0}\n" in
  let o = Bench_gate.diff ~tolerance:10. ~baseline ~current () in
  check "dropped benchmark fails the gate" true (not o.Bench_gate.passed);
  Alcotest.(check (list string))
    "missing key reported" [ "FAST_FAIR[jobs=2]" ] o.Bench_gate.missing;
  (* metric absent on one side also fails *)
  let no_metric = entries "{\"bench\":\"CCEH\",\"jobs\":2,\"other\":1.0}\n" in
  let o2 =
    Bench_gate.diff ~tolerance:10. ~baseline:(entries "{\"bench\":\"CCEH\",\"jobs\":2,\"ops_per_s\":1.0}\n")
      ~current:no_metric ()
  in
  check "absent metric fails the gate" true (not o2.Bench_gate.passed)

let test_bench_gate_new_benches_ignored () =
  let baseline = entries "{\"bench\":\"CCEH\",\"jobs\":2,\"ops_per_s\":1000.0}\n" in
  let current =
    entries
      "{\"bench\":\"CCEH\",\"jobs\":2,\"ops_per_s\":1000.0}\n\
       {\"bench\":\"NEW\",\"jobs\":2,\"ops_per_s\":1.0}\n"
  in
  let o = Bench_gate.diff ~tolerance:0. ~baseline ~current () in
  check "benches without a baseline don't gate" true o.Bench_gate.passed;
  check_int "only baseline entries judged" 1 (List.length o.Bench_gate.verdicts)

let test_bench_gate_load_rejects_empty () =
  let tmp = Filename.temp_file "yashme_bench" ".json" in
  (match Bench_gate.load tmp with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty bench file accepted");
  Sys.remove tmp;
  (match Bench_gate.load tmp with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing bench file accepted")

let () =
  Alcotest.run "telemetry"
    [
      ( "coverage",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_coverage_disabled_is_noop;
          Alcotest.test_case "requires ambient program" `Quick
            test_coverage_requires_ambient_program;
          Alcotest.test_case "accumulates and merges across domains" `Quick
            test_coverage_accumulates_and_merges;
          Alcotest.test_case "ambient restored on exception" `Quick
            test_coverage_ambient_restored_on_exception;
          Alcotest.test_case "per-variant buckets" `Quick
            test_coverage_per_variant;
          Alcotest.test_case "indices label" `Quick test_indices_label;
          Alcotest.test_case "jobs-invariant snapshot" `Slow
            test_coverage_jobs_invariant;
          Alcotest.test_case "counts match engine stats" `Quick
            test_coverage_counts_match_engine;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "report identical with telemetry on" `Quick
            test_report_identical_with_telemetry_on;
        ] );
      ( "progress",
        [
          Alcotest.test_case "inactive is a no-op" `Quick
            test_progress_inactive_is_noop;
          Alcotest.test_case "jsonl stream" `Quick test_progress_jsonl_stream;
          Alcotest.test_case "engine ticks" `Quick test_progress_engine_ticks;
        ] );
      ( "profile",
        [
          Alcotest.test_case "self time" `Quick test_profile_self_time;
          Alcotest.test_case "lanes isolated" `Quick test_profile_lanes_isolated;
          Alcotest.test_case "parse roundtrip" `Quick
            test_profile_parse_roundtrip;
          Alcotest.test_case "rejects empty and garbage" `Quick
            test_profile_rejects_empty_and_garbage;
        ] );
      ( "bench-gate",
        [
          Alcotest.test_case "passes within tolerance" `Quick
            test_bench_gate_passes_within_tolerance;
          Alcotest.test_case "fails on regression" `Quick
            test_bench_gate_fails_on_regression;
          Alcotest.test_case "fails on missing bench" `Quick
            test_bench_gate_fails_on_missing;
          Alcotest.test_case "new benches ignored" `Quick
            test_bench_gate_new_benches_ignored;
          Alcotest.test_case "load rejects empty" `Quick
            test_bench_gate_load_rejects_empty;
        ] );
    ]
