(* Tests for the witness-corpus subsystem: JSON codec, witness
   encode/decode round-trips, extraction (corpus keys == report keys,
   jobs-invariant bytes), replay, ddmin minimization and corpus
   merge — plus the pinned golden rendering of a litmus race
   witness. *)

open Pm_runtime
module Runner = Pm_harness.Runner
module Report = Pm_harness.Report
module Program = Pm_harness.Program
module Scenario = Pm_harness.Scenario
module Json = Pm_corpus.Json
module Witness = Pm_corpus.Witness
module Corpus = Pm_corpus.Corpus
module Replay = Pm_corpus.Replay
module Minimize = Pm_corpus.Minimize

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Same shape as the engine suite's toy: one racy plain store under a
   flush, one release store that never races. *)
let toy =
  Program.make ~name:"toy"
    ~setup:(fun () ->
      let a = Pmem.alloc ~align:64 16 in
      Pmem.set_root 0 a)
    ~pre:(fun () ->
      let a = Pmem.get_root 0 in
      Pmem.store ~label:"racy" a 1L;
      Pmem.store ~label:"safe" ~atomic:Px86.Access.Release (a + 8) 2L;
      Pmem.clflush a;
      Pmem.mfence ())
    ~post:(fun () ->
      let a = Pmem.get_root 0 in
      ignore (Pmem.load a);
      ignore (Pmem.load ~atomic:Px86.Access.Acquire (a + 8)))
    ()

(* Replay lookup: the local toy plus every registry program (demos
   included), like the CLI's. *)
let lookup name =
  if name = "toy" then Some toy
  else
    match Pm_benchmarks.Registry.find name with
    | exception Not_found -> None
    | p -> Some p

let sorted_keys kind (ws : Witness.t list) =
  ws
  |> List.filter (fun (w : Witness.t) -> w.Witness.kind = kind)
  |> List.map (fun (w : Witness.t) -> w.Witness.key)
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* JSON codec                                                           *)

let test_json_roundtrip () =
  let fields =
    [ ("s", `S "a \"quoted\"\nline\twith \x01 control and é utf8");
      ("i", `I (-42)); ("b", `B true); ("f", `F 0.1); ("n", `Null);
      ("big", `F 1.7976931348623157e308) ]
  in
  let line = Json.encode_obj fields in
  (match Json.decode_obj line with
  | Error msg -> Alcotest.fail msg
  | Ok fields' ->
      check "all fields round-trip" true (fields = fields'));
  (* Encoding is deterministic. *)
  check_str "stable bytes" line (Json.encode_obj fields)

let test_json_rejects_malformed () =
  let bad s =
    match Json.decode_obj s with Ok _ -> false | Error _ -> true
  in
  check "nested object" true (bad {|{"a":{"b":1}}|});
  check "array value" true (bad {|{"a":[1]}|});
  check "trailing garbage" true (bad {|{"a":1} x|});
  check "unterminated string" true (bad {|{"a":"oops|});
  check "bare word" true (bad {|{"a":yes}|});
  check "lone surrogate" true (bad {|{"a":"\ud800"}|})

(* ------------------------------------------------------------------ *)
(* Witness encode/decode                                                *)

let mc_witnesses ?(jobs = 1) p =
  (Witness.of_outcome ~program:p.Program.name
     (Runner.model_check_outcome ~jobs p))
    .Witness.witnesses

let test_witness_roundtrip () =
  let ws = mc_witnesses toy in
  check "toy yields witnesses" true (ws <> []);
  List.iter
    (fun w ->
      match Witness.decode (Witness.encode w) with
      | Error msg -> Alcotest.fail msg
      | Ok w' -> check_str "codec round-trip" (Witness.encode w) (Witness.encode w'))
    ws;
  (* Randomized options (RNG-bearing cut, float budget) round-trip
     through their labels and the seed. *)
  let racy =
    { (List.hd ws) with
      Witness.options =
        { (List.hd ws).Witness.options with
          Scenario.sched = Executor.Random_sched;
          sb_policy = Px86.Machine.Random_drain 0.4;
          cut = Px86.Machine.Cut_random (Yashme_util.Rng.create 7);
          seed = 7;
          max_wall_s = Some 1.5 } }
  in
  match Witness.decode (Witness.encode racy) with
  | Error msg -> Alcotest.fail msg
  | Ok w' ->
      check_str "randomized options round-trip" (Witness.encode racy)
        (Witness.encode w');
      check "decoded options are randomized" true
        (Scenario.options_randomized w'.Witness.options)

let test_witness_rejects_bad_version () =
  let w = List.hd (mc_witnesses toy) in
  let line = Witness.encode w in
  let bumped =
    Str.global_replace (Str.regexp_string "{\"v\":3,") "{\"v\":99," line
  in
  check "fixture rewrote the version" true (bumped <> line);
  match Witness.decode bumped with
  | Ok _ -> Alcotest.fail "version 99 must be rejected"
  | Error msg ->
      check "error names the version" true
        (try ignore (Str.search_forward (Str.regexp_string "99") msg 0); true
         with Not_found -> false)

(* Corpora recorded before the variant field existed (format v1, no
   "variant" key) must keep loading: the variant defaults to
   strict-tso, which is exactly the model those witnesses were found
   under, so they replay unchanged. *)
let test_witness_v1_compat () =
  let w = List.hd (mc_witnesses toy) in
  let line = Witness.encode w in
  let v1 =
    line
    |> Str.global_replace (Str.regexp_string "{\"v\":3,") "{\"v\":1,"
    |> Str.global_replace (Str.regexp_string "\"variant\":\"strict-tso\",") ""
  in
  check "fixture dropped the variant field" true
    (try ignore (Str.search_forward (Str.regexp_string "variant") v1 0); false
     with Not_found -> true);
  match Witness.decode v1 with
  | Error msg -> Alcotest.fail msg
  | Ok w' ->
      check "missing variant defaults to strict-tso" true
        (Px86.Variant.is_default w'.Witness.options.Scenario.variant);
      let r = Replay.replay_all ~lookup [ w' ] in
      check_int "v1 witness reproduces" r.Replay.total r.Replay.reproduced

(* A witness recorded under a non-default variant carries its label and
   replays under that same model. *)
let test_witness_variant_roundtrip () =
  let options =
    { Runner.default_options with variant = Px86.Variant.fence_nop }
  in
  let p = Option.get (lookup "litmus-publish-flag") in
  let ws =
    (Witness.of_outcome ~program:p.Program.name
       (Runner.model_check_outcome ~options p))
      .Witness.witnesses
  in
  check "fence-nop yields witnesses" true (ws <> []);
  check "the data race is recorded" true
    (List.exists (fun (w : Witness.t) -> w.Witness.key = "lit.data") ws);
  List.iter
    (fun (w : Witness.t) ->
      check "line carries the variant label" true
        (try
           ignore
             (Str.search_forward
                (Str.regexp_string "\"variant\":\"fence-nop\"")
                (Witness.encode w) 0);
           true
         with Not_found -> false))
    ws;
  let r = Replay.replay_all ~lookup ws in
  check_int "variant witnesses reproduce" r.Replay.total r.Replay.reproduced

(* ------------------------------------------------------------------ *)
(* Extraction: corpus keys == report keys, bytes jobs-invariant         *)

let test_corpus_keys_match_report () =
  (* Model checking, two-crash recovery checking and random mode; a
     clean program, a racy one and a faulty-recovery demo. *)
  let demo = Option.get (lookup "demo-faulty-recovery") in
  let cases =
    [ ("toy mc", Runner.model_check_outcome toy);
      ("cceh mc", Runner.model_check_outcome Pm_benchmarks.Cceh.program);
      ("demo mc-recovery", Runner.model_check_recovery_outcome demo);
      ("toy mc-recovery", Runner.model_check_recovery_outcome toy);
      ("memcached random",
       Runner.random_mode_outcome ~execs:10 Pm_benchmarks.Memcached.program) ]
  in
  List.iter
    (fun (name, (o : Runner.outcome)) ->
      let e = Witness.of_outcome ~program:"x" o in
      Alcotest.(check (list string))
        (name ^ ": race keys")
        (List.sort_uniq compare (Report.keys o.Runner.o_report))
        (sorted_keys Witness.Race e.Witness.witnesses);
      Alcotest.(check (list string))
        (name ^ ": recovery-failure keys")
        (List.sort_uniq compare (Report.recovery_failure_keys o.Runner.o_report))
        (sorted_keys Witness.Recovery_failure e.Witness.witnesses))
    cases

let test_corpus_jobs_invariant () =
  let demo = Option.get (lookup "demo-faulty-recovery") in
  let bytes_of outcome = Corpus.to_jsonl (Witness.of_outcome ~program:"p" outcome).Witness.witnesses in
  List.iter
    (fun (name, run) ->
      check_str name (bytes_of (run ~jobs:1)) (bytes_of (run ~jobs:4)))
    [ ("cceh mc", fun ~jobs -> Runner.model_check_outcome ~jobs Pm_benchmarks.Cceh.program);
      ("demo mc-recovery", fun ~jobs -> Runner.model_check_recovery_outcome ~jobs demo);
      ("fast-fair random",
       fun ~jobs -> Runner.random_mode_outcome ~jobs ~execs:8 Pm_benchmarks.Fast_fair.program) ]

(* ------------------------------------------------------------------ *)
(* Replay                                                               *)

let test_replay_reproduces () =
  let ws =
    mc_witnesses toy
    @ (Witness.of_outcome ~program:"demo-faulty-recovery"
         (Runner.model_check_recovery_outcome
            (Option.get (lookup "demo-faulty-recovery"))))
        .Witness.witnesses
  in
  let r = Replay.replay_all ~lookup ws in
  check_int "all witnesses reproduce" r.Replay.total r.Replay.reproduced;
  check "no failures" true (r.Replay.failures = [])

let test_replay_detects_regression () =
  let w = List.hd (mc_witnesses toy) in
  (* A fixed bug: the recorded key is no longer raised. *)
  (match Replay.replay_one ~lookup { w with Witness.key = "not a real key" } with
  | Ok () -> Alcotest.fail "bogus key must not reproduce"
  | Error msg ->
      check "diff names the observed keys" true
        (try ignore (Str.search_forward (Str.regexp_string w.Witness.key) msg 0); true
         with Not_found -> false));
  (* A vanished program is an error, not a crash. *)
  match Replay.replay_one ~lookup { w with Witness.program = "gone" } with
  | Ok () -> Alcotest.fail "unknown program must fail"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Minimization                                                         *)

let plan_index = function
  | Executor.Crash_before_flush n | Executor.Crash_before_op n -> n
  | Executor.Crash_at_end | Executor.Run_to_end -> max_int

let test_minimize_shrinks_and_reproduces () =
  let ws = mc_witnesses Pm_benchmarks.Cceh.program in
  check "cceh yields witnesses" true (ws <> []);
  List.iter
    (fun (s : Minimize.shrink) ->
      check "original reproduced" true s.Minimize.reproduced;
      check "plan index did not grow" true
        (plan_index s.Minimize.minimized.Witness.plan
        <= plan_index s.Minimize.original.Witness.plan);
      check "minimized witness is deterministic" true
        (not (Scenario.options_randomized s.Minimize.minimized.Witness.options));
      (* The contract: a minimized corpus replays clean. *)
      match Replay.replay_one ~lookup s.Minimize.minimized with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("minimized witness lost its race: " ^ msg))
    (Minimize.minimize_all ~lookup ws)

let test_minimize_derandomizes () =
  let e =
    Witness.of_outcome ~program:"toy" (Runner.random_mode_outcome ~execs:6 toy)
  in
  check "random mode found the toy race" true (e.Witness.witnesses <> []);
  List.iter
    (fun (s : Minimize.shrink) ->
      check "reproduced" true s.Minimize.reproduced;
      check "derandomized" true s.Minimize.derandomized;
      check "no RNG left in options" true
        (not (Scenario.options_randomized s.Minimize.minimized.Witness.options));
      match Replay.replay_one ~lookup s.Minimize.minimized with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    (Minimize.minimize_all ~lookup e.Witness.witnesses)

let test_minimize_stale_witness () =
  let w = List.hd (mc_witnesses toy) in
  let s = Minimize.minimize ~lookup { w with Witness.key = "fixed bug" } in
  check "stale witness flagged" false s.Minimize.reproduced;
  check_str "returned unchanged" (Witness.encode s.Minimize.original)
    (Witness.encode s.Minimize.minimized)

(* ------------------------------------------------------------------ *)
(* Corpus management                                                    *)

let test_merge_idempotent () =
  let ws = mc_witnesses toy @ mc_witnesses Pm_benchmarks.Cceh.program in
  let merged, folded = Corpus.merge [ ws; ws ] in
  check_str "self-merge is the identity" (Corpus.to_jsonl ws)
    (Corpus.to_jsonl merged);
  check_int "every duplicate folded" (List.length ws) folded

let test_save_load_roundtrip () =
  let ws = mc_witnesses toy in
  let path = Filename.temp_file "yashme-corpus" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Corpus.save path ws;
      match Corpus.load path with
      | Error msg -> Alcotest.fail msg
      | Ok ws' ->
          check_str "bytes survive the disk trip" (Corpus.to_jsonl ws)
            (Corpus.to_jsonl ws'))

let test_load_reports_line () =
  let path = Filename.temp_file "yashme-corpus" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Witness.encode (List.hd (mc_witnesses toy)) ^ "\n");
      output_string oc "{\"v\":1,broken\n";
      close_out oc;
      match Corpus.load path with
      | Ok _ -> Alcotest.fail "malformed line must fail the load"
      | Error msg ->
          check "error carries file:line" true
            (try ignore (Str.search_forward (Str.regexp_string ":2:") msg 0); true
             with Not_found -> false))

let test_stats () =
  let demo = Option.get (lookup "demo-faulty-recovery") in
  let ws =
    mc_witnesses toy
    @ (Witness.of_outcome ~program:"demo-faulty-recovery"
         (Runner.model_check_recovery_outcome demo))
        .Witness.witnesses
  in
  let s = Corpus.stats ws in
  check_int "totals add up" s.Corpus.total (s.Corpus.races + s.Corpus.recovery_failures);
  check "per-program counts sum to total" true
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Corpus.programs = s.Corpus.total)

(* ------------------------------------------------------------------ *)
(* Golden rendering of a litmus race witness (E+ combined with E')      *)

(* The smallest racy litmus program: one plain store whose flush the
   crash cuts off.  Pinning the rendered witness text keeps the
   explanation (consistent prefix CVpre, the racing store, the E+/E'
   phrasing) from drifting silently. *)
let litmus_torn =
  Program.make ~name:"litmus-torn"
    ~setup:(fun () ->
      let a = Pmem.alloc ~align:64 8 in
      Pmem.set_root 0 a)
    ~pre:(fun () ->
      let a = Pmem.get_root 0 in
      Pmem.store ~label:"val" a 0x1234L;
      Pmem.clflush a;
      Pmem.mfence ())
    ~post:(fun () -> ignore (Pmem.load (Pmem.get_root 0)))
    ()

let golden_explain =
  "persistency race on val: non-atomic store[val tid=0 lclk=2 seq=1 0x40..+8 \
   = 4660 plain] races with crash (exec 1); observed by load of 0x40..+8 in \
   exec 2\n\
   \  witness (E+ combined with E'):\n\
   \    consistent prefix CVpre = <0:2> (1 of 1 committed events)\n\
   \    | store[val tid=0 lclk=2 seq=1 0x40..+8 = 4660 plain]\n\
   \    the racing store itself: store[val tid=0 lclk=2 seq=1 0x40..+8 = 4660 \
   plain]\n\
   \    every pre-crash prefix extending E+ without flushing this store\n\
   \    crashes with the store only partially persistent.\n"

let explain_text () =
  let detector, trace =
    Runner.run_once_traced ~plan:(Executor.Crash_before_flush 0) litmus_torn
  in
  match Yashme.Detector.races detector with
  | [] -> Alcotest.fail "litmus-torn must race when its flush is cut off"
  | race :: _ -> Pm_harness.Witness.explain ~trace ~detector ~race ()

let test_explain_golden () =
  check_str "pinned witness rendering" golden_explain (explain_text ())

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "corpus"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects_malformed;
        ] );
      ( "witness",
        [
          Alcotest.test_case "encode/decode round-trip" `Quick
            test_witness_roundtrip;
          Alcotest.test_case "version gate" `Quick test_witness_rejects_bad_version;
          Alcotest.test_case "v1 compat (pre-variant)" `Quick
            test_witness_v1_compat;
          Alcotest.test_case "variant round-trip + replay" `Quick
            test_witness_variant_roundtrip;
          Alcotest.test_case "golden explain rendering" `Quick test_explain_golden;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "corpus keys == report keys" `Quick
            test_corpus_keys_match_report;
          Alcotest.test_case "bytes identical across jobs" `Quick
            test_corpus_jobs_invariant;
        ] );
      ( "replay",
        [
          Alcotest.test_case "corpus reproduces" `Quick test_replay_reproduces;
          Alcotest.test_case "regression detected" `Quick
            test_replay_detects_regression;
        ] );
      ( "minimize",
        [
          Alcotest.test_case "shrinks and still reproduces" `Slow
            test_minimize_shrinks_and_reproduces;
          Alcotest.test_case "derandomizes random-mode findings" `Quick
            test_minimize_derandomizes;
          Alcotest.test_case "stale witness kept unchanged" `Quick
            test_minimize_stale_witness;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "merge idempotent" `Quick test_merge_idempotent;
          Alcotest.test_case "save/load round-trip" `Quick test_save_load_roundtrip;
          Alcotest.test_case "load error carries position" `Quick
            test_load_reports_line;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
    ]
