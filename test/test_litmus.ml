(* Litmus tests for the Px86 machine, in the style of the Raad et al.
   formalization the paper builds on: small multi-threaded programs
   whose allowed/forbidden outcomes pin down the TSO + persistency
   semantics.

   Volatile-memory litmus tests check outcomes across random
   store-buffer drain schedules; persistency litmus tests check which
   post-crash states are reachable across random crash cuts. *)

module Rng = Yashme_util.Rng
open Px86

let check = Alcotest.(check bool)

let machine ?(policy = Machine.Random_drain 0.4) ?(variant = Variant.strict_tso)
    seed =
  Machine.create ~exec_id:0
    { Machine.sb_policy = policy; variant; rng = Rng.create seed;
      observer = Observer.nop }

let plain = Access.Plain
let rel = Access.Atomic Access.Release
let acq = Access.Atomic Access.Acquire

let store m ~tid ~addr v access =
  Machine.store m ~tid ~addr ~size:8 ~value:v ~access ~label:None;
  Machine.background m

let load m ~tid ~addr access = fst (Machine.load m ~tid ~addr ~size:8 ~access)

(* ------------------------------------------------------------------ *)
(* Volatile TSO litmus tests                                            *)

(* SB (store buffering): with buffered stores, both threads may read 0.
   x86-TSO allows r1 = r2 = 0; our machine must be able to produce it. *)
let test_sb_both_zero_possible () =
  let m = machine ~policy:(Machine.Random_drain 0.0) 0 in
  let x = 0 and y = 64 in
  Machine.store m ~tid:0 ~addr:x ~size:8 ~value:1L ~access:plain ~label:None;
  Machine.store m ~tid:1 ~addr:y ~size:8 ~value:1L ~access:plain ~label:None;
  let r1 = load m ~tid:0 ~addr:y plain in
  let r2 = load m ~tid:1 ~addr:x plain in
  check "SB: 0/0 allowed under TSO" true (r1 = 0L && r2 = 0L)

(* SB with mfence: forbidden to read 0/0. *)
let test_sb_fenced_forbidden () =
  let outcomes = ref [] in
  for seed = 0 to 30 do
    let m = machine seed in
    let x = 0 and y = 64 in
    Machine.store m ~tid:0 ~addr:x ~size:8 ~value:1L ~access:plain ~label:None;
    Machine.mfence m ~tid:0;
    Machine.store m ~tid:1 ~addr:y ~size:8 ~value:1L ~access:plain ~label:None;
    Machine.mfence m ~tid:1;
    let r1 = load m ~tid:0 ~addr:y plain in
    let r2 = load m ~tid:1 ~addr:x plain in
    outcomes := (r1, r2) :: !outcomes
  done;
  check "SB+mfence: 0/0 forbidden" false (List.mem (0L, 0L) !outcomes)

(* Same-thread forwarding: a thread always sees its own latest store. *)
let test_store_forwarding () =
  for seed = 0 to 20 do
    let m = machine seed in
    Machine.store m ~tid:0 ~addr:0 ~size:8 ~value:1L ~access:plain ~label:None;
    Machine.store m ~tid:0 ~addr:0 ~size:8 ~value:2L ~access:plain ~label:None;
    check "forwarding" true (load m ~tid:0 ~addr:0 plain = 2L)
  done

(* MP (message passing) with release/acquire: observing the flag implies
   observing the data. *)
let test_mp_release_acquire () =
  for seed = 0 to 40 do
    let m = machine seed in
    let data = 0 and flag = 64 in
    store m ~tid:0 ~addr:data 1L plain;
    store m ~tid:0 ~addr:flag 1L rel;
    let f = load m ~tid:1 ~addr:flag acq in
    let d = load m ~tid:1 ~addr:data plain in
    if f = 1L then check "MP: flag implies data" true (d = 1L)
  done

(* TSO store order: another thread can never observe the second store
   without the first (same-thread stores drain in order). *)
let test_store_order_observed () =
  for seed = 0 to 40 do
    let m = machine seed in
    let x = 0 and y = 64 in
    Machine.store m ~tid:0 ~addr:x ~size:8 ~value:1L ~access:plain ~label:None;
    Machine.store m ~tid:0 ~addr:y ~size:8 ~value:1L ~access:plain ~label:None;
    Machine.background m;
    let ry = load m ~tid:1 ~addr:y plain in
    let rx = load m ~tid:1 ~addr:x plain in
    if ry = 1L then check "no y-without-x" true (rx = 1L)
  done

(* ------------------------------------------------------------------ *)
(* Persistency litmus tests (over random crash cuts)                    *)

let crash_values ?variant ~seeds ~program ~addrs () =
  List.map
    (fun seed ->
      let m = machine ~policy:Machine.Eager ?variant seed in
      program m;
      let cs = Machine.crash m ~strategy:(Machine.Cut_random (Rng.create (seed * 7 + 1))) in
      List.map (fun a -> Memimage.read cs.Crashstate.image ~addr:a ~size:8) addrs)
    (List.init seeds (fun i -> i))

(* Same-line persist ordering: y=1 persisted implies x=1 persisted when
   x is stored first on the same cache line. *)
let test_same_line_persist_order () =
  let outcomes =
    crash_values ~seeds:40
      ~program:(fun m ->
        store m ~tid:0 ~addr:0 1L plain;
        store m ~tid:0 ~addr:8 1L plain)
      ~addrs:[ 0; 8 ] ()
  in
  check "no y-without-x on one line" false (List.mem [ 0L; 1L ] outcomes)

(* Cross-line: y-without-x IS reachable (lines persist independently). *)
let test_cross_line_reorder_possible () =
  let outcomes =
    crash_values ~seeds:60
      ~program:(fun m ->
        store m ~tid:0 ~addr:0 1L plain;
        store m ~tid:0 ~addr:64 1L plain)
      ~addrs:[ 0; 64 ] ()
  in
  check "y-without-x reachable across lines" true (List.mem [ 0L; 1L ] outcomes)

(* clflush ordering: x flushed before y stored; y persisted implies x
   persisted (the flush is ordered). *)
let test_clflush_then_store () =
  let outcomes =
    crash_values ~seeds:40
      ~program:(fun m ->
        store m ~tid:0 ~addr:0 1L plain;
        Machine.clflush m ~tid:0 ~addr:0;
        Machine.background m;
        store m ~tid:0 ~addr:64 1L plain)
      ~addrs:[ 0; 64 ] ()
  in
  check "flushed x always present" false
    (List.exists (function [ x; _ ] -> x = 0L | _ -> false) outcomes)

(* clwb without fence guarantees nothing: x may be missing. *)
let test_clwb_unfenced_weak () =
  let outcomes =
    crash_values ~seeds:60
      ~program:(fun m ->
        store m ~tid:0 ~addr:0 1L plain;
        Machine.clwb m ~tid:0 ~addr:0;
        Machine.background m)
      ~addrs:[ 0 ] ()
  in
  check "unfenced clwb may lose the store" true (List.mem [ 0L ] outcomes)

(* clwb + sfence: x always persisted. *)
let test_clwb_fenced_strong () =
  let outcomes =
    crash_values ~seeds:40
      ~program:(fun m ->
        store m ~tid:0 ~addr:0 1L plain;
        Machine.clwb m ~tid:0 ~addr:0;
        Machine.sfence m ~tid:0;
        Machine.background m)
      ~addrs:[ 0 ] ()
  in
  check "fenced clwb always persists" false (List.mem [ 0L ] outcomes)

(* movnt + sfence persists without any flush; unfenced movnt may not. *)
let test_movnt_persistency () =
  let fenced =
    crash_values ~seeds:40
      ~program:(fun m ->
        Machine.store ~nt:true m ~tid:0 ~addr:0 ~size:8 ~value:1L ~access:plain
          ~label:None;
        Machine.background m;
        Machine.sfence m ~tid:0;
        Machine.background m)
      ~addrs:[ 0 ] ()
  in
  check "fenced movnt persists" false (List.mem [ 0L ] fenced);
  let unfenced =
    crash_values ~seeds:60
      ~program:(fun m ->
        Machine.store ~nt:true m ~tid:0 ~addr:0 ~size:8 ~value:1L ~access:plain
          ~label:None;
        Machine.background m)
      ~addrs:[ 0 ] ()
  in
  check "unfenced movnt may be lost" true (List.mem [ 0L ] unfenced)

(* Store-buffered stores NEVER survive a crash (the buffer is volatile). *)
let test_buffered_stores_lost () =
  for seed = 0 to 20 do
    let m = machine ~policy:(Machine.Random_drain 0.0) seed in
    Machine.store m ~tid:0 ~addr:0 ~size:8 ~value:1L ~access:plain ~label:None;
    let cs = Machine.crash m ~strategy:Machine.Cut_all in
    check "buffered store lost" true
      (Memimage.read cs.Crashstate.image ~addr:0 ~size:8 = 0L)
  done

(* Epoch ordering across a fence with explicit flush: x flushed+fenced
   before y stored means persist(y) implies persist(x). *)
let test_epoch_ordering () =
  let outcomes =
    crash_values ~seeds:40
      ~program:(fun m ->
        store m ~tid:0 ~addr:0 1L plain;
        Machine.clwb m ~tid:0 ~addr:0;
        Machine.sfence m ~tid:0;
        Machine.background m;
        store m ~tid:0 ~addr:64 1L plain)
      ~addrs:[ 0; 64 ] ()
  in
  check "epoch: y implies x" false
    (List.exists (function [ x; y ] -> x = 0L && y = 1L | _ -> false) outcomes)

(* ------------------------------------------------------------------ *)
(* Persistency-model variants: the same programs under perturbed
   descriptors, pinning each variant's semantic delta at the machine
   level (the end-to-end detector deltas are pinned by the
   LITMUS_matrix golden in the benchmarks suite). *)

(* fence-nop: the strict guarantee of clwb+sfence evaporates — the
   flush buffer is never drained, so the store may be lost. *)
let test_variant_fence_nop_loses_fenced_clwb () =
  let outcomes =
    crash_values ~variant:Variant.fence_nop ~seeds:40
      ~program:(fun m ->
        store m ~tid:0 ~addr:0 1L plain;
        Machine.clwb m ~tid:0 ~addr:0;
        Machine.sfence m ~tid:0;
        Machine.background m)
      ~addrs:[ 0 ] ()
  in
  check "fence-nop: fenced clwb may lose the store" true
    (List.mem [ 0L ] outcomes)

(* epoch: a bare fence is a persist barrier, so a store followed by
   sfence alone is always durable — which strict-tso never guarantees. *)
let test_variant_epoch_bare_fence_persists () =
  let program m =
    store m ~tid:0 ~addr:0 1L plain;
    Machine.sfence m ~tid:0;
    Machine.background m
  in
  let epoch =
    crash_values ~variant:Variant.epoch ~seeds:40 ~program ~addrs:[ 0 ] ()
  in
  check "epoch: bare sfence persists the store" false (List.mem [ 0L ] epoch);
  let strict = crash_values ~seeds:60 ~program ~addrs:[ 0 ] () in
  check "strict-tso: bare sfence may lose the store" true
    (List.mem [ 0L ] strict)

(* relaxed: clwb applies at commit, so even an unfenced clwb is always
   durable (strict-tso's test_clwb_unfenced_weak shows the contrast). *)
let test_variant_relaxed_unfenced_clwb_persists () =
  let outcomes =
    crash_values ~variant:Variant.relaxed ~seeds:60
      ~program:(fun m ->
        store m ~tid:0 ~addr:0 1L plain;
        Machine.clwb m ~tid:0 ~addr:0;
        Machine.background m)
      ~addrs:[ 0 ] ()
  in
  check "relaxed: unfenced clwb always persists" false (List.mem [ 0L ] outcomes)

(* sb-bypass-off: a load stalls until the buffer drains instead of
   forwarding, so the own load makes the store visible to everyone. *)
let test_variant_sb_bypass_off_drains_on_load () =
  let run variant =
    let m = machine ~policy:(Machine.Random_drain 0.0) ~variant 0 in
    Machine.store m ~tid:0 ~addr:0 ~size:8 ~value:1L ~access:plain ~label:None;
    let own = load m ~tid:0 ~addr:0 plain in
    let other = load m ~tid:1 ~addr:0 plain in
    (own, other)
  in
  check "strict-tso: forwarding keeps the store private" true
    (run Variant.strict_tso = (1L, 0L));
  check "sb-bypass-off: the load drains, others see the store" true
    (run Variant.sb_bypass_off = (1L, 1L))

(* Label round-trips: every built-in by name, every descriptor through
   the explicit field form, and garbage rejected. *)
let test_variant_label_roundtrip () =
  List.iter
    (fun (name, v, _) ->
      check (name ^ " label") true (Variant.label v = name);
      check (name ^ " of_label") true (Variant.of_label name = Some v);
      check
        (name ^ " field form")
        true
        (Variant.of_label (Variant.field_form v) = Some v))
    Variant.builtins;
  let custom = { Variant.fence_nop with Variant.sb_bypass = false } in
  let l = Variant.label custom in
  check "custom label uses the field form" true
    (String.length l > 7 && String.sub l 0 7 = "custom:");
  check "custom label round-trips" true (Variant.of_label l = Some custom);
  check "unknown name rejected" true (Variant.of_label "px86-turbo" = None);
  check "truncated field form rejected" true
    (Variant.of_label "custom:sb=tso,bypass=on" = None);
  check "default is strict-tso" true
    (Variant.is_default Variant.strict_tso
    && Variant.default_label = "strict-tso"
    && not (Variant.is_default Variant.epoch))

let () =
  Alcotest.run "litmus"
    [
      ( "tso-volatile",
        [
          Alcotest.test_case "SB both-zero possible" `Quick test_sb_both_zero_possible;
          Alcotest.test_case "SB fenced forbidden" `Quick test_sb_fenced_forbidden;
          Alcotest.test_case "store forwarding" `Quick test_store_forwarding;
          Alcotest.test_case "MP release/acquire" `Quick test_mp_release_acquire;
          Alcotest.test_case "store order observed" `Quick test_store_order_observed;
        ] );
      ( "persistency",
        [
          Alcotest.test_case "same-line persist order" `Quick test_same_line_persist_order;
          Alcotest.test_case "cross-line reorder possible" `Quick
            test_cross_line_reorder_possible;
          Alcotest.test_case "clflush then store" `Quick test_clflush_then_store;
          Alcotest.test_case "clwb unfenced weak" `Quick test_clwb_unfenced_weak;
          Alcotest.test_case "clwb fenced strong" `Quick test_clwb_fenced_strong;
          Alcotest.test_case "movnt persistency" `Quick test_movnt_persistency;
          Alcotest.test_case "buffered stores lost" `Quick test_buffered_stores_lost;
          Alcotest.test_case "epoch ordering" `Quick test_epoch_ordering;
        ] );
      ( "variants",
        [
          Alcotest.test_case "fence-nop loses fenced clwb" `Quick
            test_variant_fence_nop_loses_fenced_clwb;
          Alcotest.test_case "epoch bare fence persists" `Quick
            test_variant_epoch_bare_fence_persists;
          Alcotest.test_case "relaxed unfenced clwb persists" `Quick
            test_variant_relaxed_unfenced_clwb_persists;
          Alcotest.test_case "sb-bypass-off drains on load" `Quick
            test_variant_sb_bypass_off_drains_on_load;
          Alcotest.test_case "label round-trips" `Quick
            test_variant_label_roundtrip;
        ] );
    ]
