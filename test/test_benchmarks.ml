(* Tests for the benchmark suite: functional correctness of every data
   structure, crash-recovery behaviour, and — the headline reproduction —
   the exact race sets of Tables 3 and 4. *)

open Pm_runtime
open Pm_benchmarks
module Runner = Pm_harness.Runner
module Report = Pm_harness.Report

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let in_sim fn =
  let r = Executor.run ~exec_id:0 fn in
  assert (r.Executor.outcome = Executor.Completed)

let real_labels p =
  let r = Runner.model_check p in
  List.map (fun (f : Report.finding) -> f.Report.label) (Report.real r)

(* ------------------------------------------------------------------ *)
(* Functional tests                                                     *)

let test_cceh_functional () =
  in_sim (fun () ->
      let t = Cceh.create () in
      List.iter (fun k -> Cceh.insert t ~key:k ~value:(k * 7)) [ 1; 2; 3; 4 ];
      List.iter (fun k -> assert (Cceh.get t ~key:k = Some (k * 7))) [ 1; 2; 3; 4 ];
      assert (Cceh.get t ~key:99 = None);
      assert (List.length (Cceh.scan t) = 4);
      Cceh.remove t ~key:2;
      assert (Cceh.get t ~key:2 = None);
      assert (List.length (Cceh.scan t) = 3))

let test_cceh_split_and_doubling () =
  in_sim (fun () ->
      let t = Cceh.create () in
      (* Enough keys to force segment splits and directory doubling. *)
      let keys = List.init 48 (fun i -> i + 1) in
      List.iter (fun k -> Cceh.insert t ~key:k ~value:k) keys;
      List.iter (fun k -> assert (Cceh.get t ~key:k = Some k)) keys;
      assert (Cceh.global_depth t > Cceh.initial_depth);
      assert (List.length (Cceh.scan t) = 48))

let test_fast_fair_functional () =
  in_sim (fun () ->
      let t = Fast_fair.create () in
      let keys = List.init 30 (fun i -> ((i * 7) mod 31) + 1) |> List.sort_uniq compare in
      List.iter (fun k -> Fast_fair.insert t ~key:k ~value:(k * 2)) keys;
      List.iter (fun k -> assert (Fast_fair.get t ~key:k = Some (k * 2))) keys;
      assert (Fast_fair.get t ~key:1000 = None);
      let scanned = List.map fst (Fast_fair.scan t) in
      assert (scanned = List.sort compare keys);
      assert (Fast_fair.height t >= 2))

let test_p_art_functional () =
  in_sim (fun () ->
      let t = P_art.create () in
      let keys = [ 0x1; 0x10; 0x100; 0x1000; 0xABCDE ] in
      List.iter (fun k -> P_art.insert t ~key:k ~value:(k + 1)) keys;
      List.iter (fun k -> assert (P_art.lookup t ~key:k = Some (k + 1))) keys;
      P_art.remove t ~key:0x10;
      assert (P_art.lookup t ~key:0x10 = None);
      assert (P_art.recover_scan t = 4))

let test_p_bwtree_functional () =
  in_sim (fun () ->
      let t = P_bwtree.create () in
      List.iter (fun k -> P_bwtree.insert t ~key:k ~value:(k * 3)) [ 1; 2; 3 ];
      (* Delta-chain update: re-insert overrides. *)
      P_bwtree.insert t ~key:2 ~value:222;
      assert (P_bwtree.lookup t ~key:2 = Some 222);
      assert (P_bwtree.lookup t ~key:3 = Some 9);
      assert (P_bwtree.current_epoch t > 0))

let test_p_clht_functional () =
  in_sim (fun () ->
      let t = P_clht.create () in
      List.iter (fun k -> assert (P_clht.insert t ~key:k ~value:(k * k))) [ 2; 3; 5 ];
      List.iter (fun k -> assert (P_clht.get t ~key:k = Some (k * k))) [ 2; 3; 5 ];
      assert (P_clht.get t ~key:7 = None))

let test_p_masstree_functional () =
  in_sim (fun () ->
      let t = P_masstree.create () in
      let keys = List.init 25 (fun i -> ((i * 13) mod 29) + 1) |> List.sort_uniq compare in
      List.iter (fun k -> P_masstree.put t ~key:k ~value:(k * 5)) keys;
      List.iter (fun k -> assert (P_masstree.get t ~key:k = Some (k * 5))) keys;
      let scanned = List.map fst (P_masstree.scan t) in
      assert (scanned = List.sort compare keys))

let test_pmdk_btree_functional () =
  in_sim (fun () ->
      let p = Pmdk_btree.create () in
      let kv = List.init 20 (fun i -> (((i * 11) mod 23) + 1, i)) in
      List.iter (fun (k, v) -> Pmdk_btree.insert p ~key:k ~value:v) kv;
      List.iter
        (fun (k, _) -> assert (Pmdk_btree.lookup p ~key:k <> None))
        kv;
      let keys = List.sort_uniq compare (List.map fst kv) in
      assert (List.map fst (Pmdk_btree.scan p) = keys))

let test_pmdk_ctree_functional () =
  in_sim (fun () ->
      let p = Pmdk_ctree.create () in
      let kv = [ (10, 1); (6, 2); (15, 3); (1, 4); (9, 5); (0, 6) ] in
      List.iter (fun (k, v) -> Pmdk_ctree.insert p ~key:k ~value:v) kv;
      List.iter (fun (k, v) -> assert (Pmdk_ctree.lookup p ~key:k = Some v)) kv;
      (* Update in place. *)
      Pmdk_ctree.insert p ~key:10 ~value:42;
      assert (Pmdk_ctree.lookup p ~key:10 = Some 42))

let test_pmdk_rbtree_functional () =
  in_sim (fun () ->
      let p = Pmdk_rbtree.create () in
      let keys = List.init 20 (fun i -> i + 1) in
      List.iter (fun k -> Pmdk_rbtree.insert p ~key:k ~value:(k * 10)) keys;
      List.iter (fun k -> assert (Pmdk_rbtree.lookup p ~key:k = Some (k * 10))) keys;
      (* check_and_scan raises if red-black invariants are broken. *)
      assert (List.map fst (Pmdk_rbtree.check_and_scan p) = keys))

let test_pmdk_hashmaps_functional () =
  in_sim (fun () ->
      let p = Pmdk_hashmap.create_tx () in
      List.iter (fun (k, v) -> Pmdk_hashmap.insert_tx p ~key:k ~value:v)
        [ (1, 10); (2, 20); (3, 30) ];
      assert (Pmdk_hashmap.lookup p ~key:2 = Some 20);
      assert (Pmdk_hashmap.count p = 3));
  in_sim (fun () ->
      let p = Pmdk_hashmap.create_atomic () in
      List.iter (fun (k, v) -> Pmdk_hashmap.insert_atomic p ~key:k ~value:v)
        [ (1, 10); (2, 20) ];
      assert (Pmdk_hashmap.lookup p ~key:1 = Some 10);
      assert (Pmdk_hashmap.count p = 2))

let test_memcached_functional () =
  in_sim (fun () ->
      let t = Memcached.startup () in
      Memcached.set t ~key:101 ~value:"alpha";
      Memcached.set t ~key:202 ~value:"bravo";
      assert (Memcached.get t ~key:101 = Some "alpha");
      assert (Memcached.get t ~key:202 = Some "bravo");
      assert (Memcached.get t ~key:999 = None);
      assert (Memcached.restart_check t = 2))

let test_redis_functional () =
  in_sim (fun () ->
      let t = Redis.start () in
      Redis.set t ~key:1 ~value:"a";
      Redis.set t ~key:2 ~value:"bb";
      Redis.set t ~key:1 ~value:"ccc" (* overwrite *);
      assert (Redis.get t ~key:1 = Some "ccc");
      assert (Redis.get t ~key:2 = Some "bb");
      assert (Redis.recover_all t = 2))

(* ------------------------------------------------------------------ *)
(* Extended features                                                    *)

let test_fast_fair_remove_and_range () =
  in_sim (fun () ->
      let t = Fast_fair.create () in
      let keys = List.init 20 (fun i -> i + 1) in
      List.iter (fun k -> Fast_fair.insert t ~key:k ~value:k) keys;
      Fast_fair.remove t ~key:7;
      Fast_fair.remove t ~key:13;
      assert (Fast_fair.get t ~key:7 = None);
      assert (Fast_fair.get t ~key:8 = Some 8);
      let r = List.map fst (Fast_fair.range t ~lo:5 ~hi:15) in
      assert (r = [ 5; 6; 8; 9; 10; 11; 12; 14; 15 ]))

let test_p_art_node_growth () =
  in_sim (fun () ->
      let t = P_art.create () in
      (* Six keys sharing every nibble but the last force an N4 -> N16
         growth on the shared parent. *)
      let keys = List.init 6 (fun i -> 0x54320 + i) in
      List.iter (fun k -> P_art.insert t ~key:k ~value:k) keys;
      List.iter (fun k -> assert (P_art.lookup t ~key:k = Some k)) keys;
      assert (P_art.recover_scan t = 6))

let test_p_art_leaf_update () =
  in_sim (fun () ->
      let t = P_art.create () in
      P_art.insert t ~key:42 ~value:1;
      P_art.insert t ~key:42 ~value:2;
      assert (P_art.lookup t ~key:42 = Some 2))

let test_p_clht_resize () =
  in_sim (fun () ->
      let t = P_clht.create () in
      let keys = List.init 40 (fun i -> i + 1) in
      List.iter (fun k -> ignore (P_clht.insert t ~key:k ~value:(k * 2))) keys;
      List.iter (fun k -> assert (P_clht.get t ~key:k = Some (k * 2))) keys;
      check "table grew" true (P_clht.buckets t > 8))

let test_p_bwtree_delete_consolidate () =
  in_sim (fun () ->
      let t = P_bwtree.create () in
      (* Hammer one slot to trigger consolidation. *)
      for i = 1 to 10 do
        P_bwtree.insert t ~key:1 ~value:i
      done;
      assert (P_bwtree.lookup t ~key:1 = Some 10);
      P_bwtree.delete t ~key:1;
      assert (P_bwtree.lookup t ~key:1 = None);
      P_bwtree.insert t ~key:1 ~value:99;
      assert (P_bwtree.lookup t ~key:1 = Some 99))

let test_pmdk_ctree_remove () =
  in_sim (fun () ->
      let p = Pmdk_ctree.create () in
      List.iter (fun (k, v) -> Pmdk_ctree.insert p ~key:k ~value:v)
        [ (10, 1); (6, 2); (15, 3); (1, 4) ];
      Pmdk_ctree.remove p ~key:6;
      assert (Pmdk_ctree.lookup p ~key:6 = None);
      List.iter (fun (k, v) -> assert (Pmdk_ctree.lookup p ~key:k = Some v))
        [ (10, 1); (15, 3); (1, 4) ];
      (* Deleting the only key empties the tree. *)
      let p2 = Pmdk_ctree.create () in
      Pmdk_ctree.insert p2 ~key:5 ~value:1;
      Pmdk_ctree.remove p2 ~key:5;
      assert (Pmdk_ctree.lookup p2 ~key:5 = None))

let test_memcached_delete_stats () =
  in_sim (fun () ->
      let t = Memcached.startup () in
      Memcached.set t ~key:101 ~value:"a";
      Memcached.set t ~key:202 ~value:"b";
      check_int "two linked" 2 (Memcached.stats t);
      Memcached.delete t ~key:101;
      check_int "one after delete" 1 (Memcached.stats t);
      assert (Memcached.get t ~key:101 = None))

let test_redis_del_incr () =
  in_sim (fun () ->
      let t = Redis.start () in
      Redis.set t ~key:1 ~value:"v";
      check "del existing" true (Redis.del t ~key:1);
      check "del absent" false (Redis.del t ~key:1);
      check_int "incr from nothing" 1 (Redis.incr t ~key:9);
      check_int "incr again" 2 (Redis.incr t ~key:9);
      assert (Redis.get t ~key:9 = Some "2"))

let test_p_masstree_multilayer () =
  in_sim (fun () ->
      let t = P_masstree.create () in
      P_masstree.put_multi t ~key:[ 1; 2; 3 ] ~value:123;
      P_masstree.put_multi t ~key:[ 1; 2; 4 ] ~value:124;
      P_masstree.put_multi t ~key:[ 1; 9 ] ~value:19;
      P_masstree.put t ~key:50 ~value:150;
      assert (P_masstree.get_multi t ~key:[ 1; 2; 3 ] = Some 123);
      assert (P_masstree.get_multi t ~key:[ 1; 2; 4 ] = Some 124);
      assert (P_masstree.get_multi t ~key:[ 1; 9 ] = Some 19);
      assert (P_masstree.get_multi t ~key:[ 1; 2; 5 ] = None);
      assert (P_masstree.get_multi t ~key:[ 2; 2 ] = None);
      assert (P_masstree.get t ~key:50 = Some 150))

let test_memcached_lru_and_ops () =
  in_sim (fun () ->
      let t = Memcached.startup () in
      Memcached.set t ~key:1 ~value:"one";
      assert (Memcached.append t ~key:1 ~suffix:"+1");
      assert (Memcached.get t ~key:1 = Some "one+1");
      check "append to absent fails" false (Memcached.append t ~key:77 ~suffix:"x");
      check_int "incr fresh" 1 (Memcached.incr_counter t ~key:5);
      check_int "incr again" 2 (Memcached.incr_counter t ~key:5);
      (* Overfill the small class: the oldest untouched key is evicted,
         recently touched ones survive. *)
      for k = 10 to 16 do
        Memcached.set t ~key:k ~value:(string_of_int k)
      done;
      assert (Memcached.get t ~key:16 = Some "16"))

let test_undo_tx_commit_and_abort () =
  in_sim (fun () ->
      let p = Pmdk_pool.create ~root_size:16 in
      let r = Pmdk_pool.root p in
      (* Committed undo transaction: new values stick. *)
      Pmdk_pool.tx_undo p (fun () ->
          Pmdk_pool.tx_add_range p r 16;
          Pmdk_pool.tx_direct_store p r 1L;
          Pmdk_pool.tx_direct_store p (r + 8) 2L);
      assert (Pmem.load r = 1L && Pmem.load (r + 8) = 2L);
      (* Aborted undo transaction: snapshots roll back. *)
      (try
         Pmdk_pool.tx_undo p (fun () ->
             Pmdk_pool.tx_add_range p r 16;
             Pmdk_pool.tx_direct_store p r 99L;
             failwith "abort")
       with Failure _ -> ());
      assert (Pmem.load r = 1L && Pmem.load (r + 8) = 2L))

(* Undo-log atomicity under crashes: after a crash anywhere inside the
   transaction, recovery restores either the complete old state or (when
   sealed) the complete new state — never a mix. *)
let test_undo_tx_crash_atomicity () =
  let program =
    Pm_harness.Program.make ~name:"undo-atomicity"
      ~setup:(fun () ->
        let p = Pmdk_pool.create ~root_size:16 in
        let r = Pmdk_pool.root p in
        Pmem.store r 10L;
        Pmem.store (r + 8) 20L;
        Pmem.persist r 16)
      ~pre:(fun () ->
        let p = Pmdk_pool.open_pool () in
        let r = Pmdk_pool.root p in
        Pmdk_pool.tx_undo p (fun () ->
            Pmdk_pool.tx_add_range p r 16;
            Pmdk_pool.tx_direct_store p r 11L;
            Pmdk_pool.tx_direct_store p (r + 8) 21L))
      ~post:(fun () ->
        let p = Pmdk_pool.open_pool () in
        let r = Pmdk_pool.root p in
        let a = Pmem.load r and b = Pmem.load (r + 8) in
        if not ((a = 10L && b = 20L) || (a = 11L && b = 21L)) then
          failwith
            (Printf.sprintf "torn undo state: %Ld/%Ld" a b))
      ()
  in
  let points = Runner.count_flush_points program in
  check "undo tx has crash points" true (points > 5);
  for n = 0 to points - 1 do
    let _, _, post = Runner.run_once ~plan:(Executor.Crash_before_flush n) program in
    check "recovery consistent" true (post <> None)
  done

(* The undo log's shared ulog.c entry pointer races like the redo one. *)
let test_undo_log_race_surface () =
  let program =
    Pm_harness.Program.make ~name:"undo-races"
      ~setup:(fun () -> ignore (Pmdk_pool.create ~root_size:16))
      ~pre:(fun () ->
        let p = Pmdk_pool.open_pool () in
        let r = Pmdk_pool.root p in
        Pmdk_pool.tx_undo p (fun () ->
            Pmdk_pool.tx_add_range p r 8;
            Pmdk_pool.tx_direct_store p r 7L))
      ~post:(fun () -> ignore (Pmdk_pool.open_pool ()))
      ()
  in
  Alcotest.(check (list string)) "only the ulog pointer races"
    [ "pointer to ulog_entry in ulog.c" ]
    (real_labels program)

(* CCEH recovery sanity: a fully persisted prefix of inserts survives
   any later crash (segments/directory are published only when
   persisted). *)
let test_cceh_crash_recovery_consistency () =
  let program =
    Pm_harness.Program.make ~name:"cceh-consistency"
      ~setup:(fun () ->
        let t = Cceh.create () in
        List.iter (fun k -> Cceh.insert t ~key:k ~value:(k * 3)) [ 1; 2; 3 ])
      ~pre:(fun () ->
        let t = Cceh.open_existing () in
        List.iter (fun k -> Cceh.insert t ~key:k ~value:(k * 3)) (List.init 20 (fun i -> i + 4)))
      ~post:(fun () ->
        let t = Cceh.open_existing () in
        (* Keys from the clean setup phase must always be readable. *)
        List.iter (fun k -> assert (Cceh.get t ~key:k = Some (k * 3))) [ 1; 2; 3 ])
      ()
  in
  let points = Runner.count_flush_points program in
  for n = 0 to min 40 (points - 1) do
    let _, _, post = Runner.run_once ~plan:(Executor.Crash_before_flush n) program in
    check "recovery ran" true (post <> None)
  done

(* ------------------------------------------------------------------ *)
(* Crash-recovery behaviour                                             *)

let test_fast_fair_survives_any_crash () =
  (* Crash the insert workload at every flush point; after recovery the
     tree must contain a prefix-consistent subset: every key that a
     completed+persisted insert wrote must be readable. *)
  let points = Runner.count_flush_points Fast_fair.program in
  check "has crash points" true (points > 10);
  for n = 0 to min 20 (points - 1) do
    let _, pre, _ =
      Runner.run_once ~plan:(Executor.Crash_before_flush n) Fast_fair.program
    in
    check "crashed" true (pre.Executor.outcome = Executor.Crashed)
  done

let test_redis_tx_atomicity () =
  (* Crash at every flush point of a single SET: after recovery the key
     either maps to a checksum-valid value or is absent — never a torn
     read that validation accepts. *)
  let program =
    Pm_harness.Program.make ~name:"redis-atomicity"
      ~setup:(fun () -> ignore (Redis.start ()))
      ~pre:(fun () ->
        let t = Redis.open_existing () in
        Redis.set t ~key:5 ~value:"atomic-value")
      ~post:(fun () ->
        let t = Redis.open_existing () in
        match Redis.get t ~key:5 with
        | Some v -> assert (v = "atomic-value")
        | None -> ())
      ()
  in
  let points = Runner.count_flush_points program in
  for n = 0 to points - 1 do
    let _, _, post = Runner.run_once ~plan:(Executor.Crash_before_flush n) program in
    (* The recovery assertion runs inside post; reaching here means no
       torn value passed validation. *)
    check "post ran" true (post <> None)
  done

let test_memcached_checksum_rejects_torn_values () =
  (* Crash mid-SET everywhere: restart_check must never return an item
     whose payload fails validation (read_item filters). *)
  let program = Memcached.program in
  let points = Runner.count_flush_points program in
  for n = 0 to min 30 (points - 1) do
    let _, _, post = Runner.run_once ~plan:(Executor.Crash_before_flush n) program in
    check "restart check completed" true (post <> None)
  done

(* ------------------------------------------------------------------ *)
(* Multi-threaded workloads (the RECIPE indexes are concurrent)         *)

let test_cceh_multithreaded_functional () =
  (* Two writers on disjoint key ranges; CAS slot-locking keeps them
     from colliding.  Exercised under the random scheduler. *)
  List.iter
    (fun seed ->
      let r =
        Executor.run ~sched:Executor.Random_sched ~seed ~exec_id:0 (fun () ->
            let t = Cceh.create () in
            let t1 =
              Pmem.spawn (fun () ->
                  List.iter (fun k -> Cceh.insert t ~key:k ~value:k) [ 1; 2; 3; 4 ])
            in
            let t2 =
              Pmem.spawn (fun () ->
                  List.iter (fun k -> Cceh.insert t ~key:k ~value:k) [ 11; 12; 13; 14 ])
            in
            Pmem.join t1;
            Pmem.join t2;
            List.iter
              (fun k -> assert (Cceh.get t ~key:k = Some k))
              [ 1; 2; 3; 4; 11; 12; 13; 14 ])
      in
      assert (r.Executor.outcome = Executor.Completed))
    [ 1; 7; 23; 99 ]

let test_clht_multithreaded_functional () =
  List.iter
    (fun seed ->
      let r =
        Executor.run ~sched:Executor.Random_sched ~seed ~exec_id:0 (fun () ->
            let t = P_clht.create () in
            let writer keys () = List.iter (fun k -> ignore (P_clht.insert t ~key:k ~value:k)) keys in
            let t1 = Pmem.spawn (writer [ 2; 3; 5; 7 ]) in
            let t2 = Pmem.spawn (writer [ 11; 13; 17; 19 ]) in
            Pmem.join t1;
            Pmem.join t2;
            List.iter
              (fun k -> assert (P_clht.get t ~key:k = Some k))
              [ 2; 3; 5; 7; 11; 13; 17; 19 ])
      in
      assert (r.Executor.outcome = Executor.Completed))
    [ 5; 17; 41 ]

let test_cceh_multithreaded_detection () =
  (* A concurrent pre-crash workload still yields the two CCEH races. *)
  let program =
    Pm_harness.Program.make ~name:"cceh-mt"
      ~setup:(fun () -> ignore (Cceh.create ()))
      ~pre:(fun () ->
        let t = Cceh.open_existing () in
        let t1 =
          Pmem.spawn (fun () ->
              List.iter (fun k -> Cceh.insert t ~key:k ~value:k) [ 1; 2; 3 ])
        in
        let t2 =
          Pmem.spawn (fun () ->
              List.iter (fun k -> Cceh.insert t ~key:k ~value:k) [ 11; 12; 13 ])
        in
        Pmem.join t1;
        Pmem.join t2)
      ~post:(fun () ->
        let t = Cceh.open_existing () in
        ignore (Cceh.scan t))
      ()
  in
  let opts = { Runner.default_options with sched = Executor.Random_sched } in
  let r = Runner.model_check ~options:opts program in
  Alcotest.(check (list string)) "both CCEH races under concurrency"
    [ "key in Pair struct in pair.h"; "value in Pair struct in pair.h" ]
    (List.map (fun (f : Report.finding) -> f.Report.label) (Report.real r))

(* ------------------------------------------------------------------ *)
(* Race reproduction: Tables 3 and 4                                    *)

let test_table3_cceh () =
  Alcotest.(check (list string)) "CCEH races (#1-#2)"
    [ "key in Pair struct in pair.h"; "value in Pair struct in pair.h" ]
    (real_labels Cceh.program)

let test_table3_fast_fair () =
  Alcotest.(check (list string)) "FAST_FAIR races (#3-#8)"
    [
      "key in entry class in btree.h";
      "last_index in header class in btree.h";
      "ptr in entry class in btree.h";
      "root in btree class in btree.h";
      "sibling_ptr in header class in btree.h";
      "switch_counter in header class in btree.h";
    ]
    (real_labels Fast_fair.program)

let test_table3_p_art () =
  Alcotest.(check (list string)) "P-ART races (#9-#15)"
    [
      "added in DeletionList class in Epoche.h";
      "compactCount in N class in N.h";
      "count in N class in N.h";
      "deletitionListCount in DeletionList class in Epoche.h";
      "headDeletionList in DeletionList class in Epoche.h";
      "nodesCount in LabelDelete struct in Epoche.h";
      "thresholdCounter in DeletionList class in Epoche.h";
    ]
    (real_labels P_art.program)

let test_table3_p_bwtree () =
  Alcotest.(check (list string)) "P-BwTree race (#16)"
    [ "epoch in BwTreeBase class in bwtree.h" ]
    (real_labels P_bwtree.program)

let test_table3_p_clht () =
  Alcotest.(check (list string)) "P-CLHT is race-free" [] (real_labels P_clht.program)

let test_table3_p_masstree () =
  Alcotest.(check (list string)) "P-Masstree races (#17-#19)"
    [
      "next in leafnode class in masstree.h";
      "permutation in leafnode class in masstree.h";
      "root_ in masstree class in masstree.h";
    ]
    (real_labels P_masstree.program)

let test_table3_total_19 () =
  let total =
    List.fold_left
      (fun acc p -> acc + List.length (real_labels p))
      0 Registry.indexes
  in
  check_int "19 races across the PM indexes" 19 total

let test_table4_pmdk () =
  List.iter
    (fun p ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s exposes the ulog race (#1)" p.Pm_harness.Program.name)
        [ "pointer to ulog_entry in ulog.c" ]
        (real_labels p))
    [ Pmdk_btree.program; Pmdk_ctree.program; Pmdk_rbtree.program;
      Pmdk_hashmap.program_tx; Pmdk_hashmap.program_atomic ]

let test_table4_memcached () =
  Alcotest.(check (list string)) "Memcached races (#2-#5)"
    [
      "cas variable in item struct in memcached.h";
      "id variable in pslab_t struct in pslab.c";
      "it_flags variable in item_chunk struct in memcached.h";
      "valid variable in pslab_pool_t struct in pslab.c";
    ]
    (real_labels Memcached.program)

let test_checksum_findings_are_benign () =
  let r = Runner.model_check Pmdk_btree.program in
  List.iter
    (fun (f : Report.finding) ->
      if f.Report.label = Pmdk_ulog.label_data || f.Report.label = Pmdk_ulog.label_checksum
      then check (f.Report.label ^ " benign") true f.Report.benign)
    r.Report.findings

let test_registry_complete () =
  check_int "13 programs (Table 5 rows)" 13 (List.length Registry.all);
  check "find is case-insensitive" true
    ((Registry.find "cceh").Pm_harness.Program.name = "CCEH");
  check "litmus programs findable but not in check-all" true
    (List.for_all
       (fun (p : Pm_harness.Program.t) ->
         (Registry.find p.Pm_harness.Program.name) == p
         && not (List.memq p Registry.all))
       Registry.litmus);
  Alcotest.check_raises "unknown name" Not_found (fun () ->
      ignore (Registry.find "nope"))

(* ------------------------------------------------------------------ *)
(* The litmus x variant matrix (persistency-model validation)           *)

module Variant = Px86.Variant

let matrix = lazy (Litmus.run_matrix ())

(* The strict-tso column IS today's behaviour: running each litmus case
   with an explicit strict-tso variant produces the byte-identical
   report of a run with untouched default options. *)
let test_litmus_strict_tso_is_default () =
  List.iter
    (fun (case : Litmus.case) ->
      let run options =
        let r =
          if case.Litmus.c_recovery then
            Runner.model_check_recovery ~options case.Litmus.c_program
          else Runner.model_check ~options case.Litmus.c_program
        in
        Report.to_string r
      in
      Alcotest.(check string)
        (case.Litmus.c_name ^ " bytes")
        (run case.Litmus.c_options)
        (run
           { case.Litmus.c_options with
             Runner.variant = Variant.strict_tso }))
    Litmus.cases

(* The golden divergence table, committed as LITMUS_matrix.txt (also
   enforced by `yashme litmus --expect` in CI).  A diff here means the
   persistency-model semantics changed. *)
let test_litmus_matrix_golden () =
  (* dune runtest runs in test/; a direct `dune exec` runs in the
     workspace root. *)
  let path =
    if Sys.file_exists "LITMUS_matrix.txt" then "LITMUS_matrix.txt"
    else "../LITMUS_matrix.txt"
  in
  let golden = In_channel.with_open_bin path In_channel.input_all in
  Alcotest.(check string)
    "rendered matrix matches the committed golden table"
    (String.trim golden)
    (String.trim (Litmus.render (Lazy.force matrix)))

(* Named divergences: each non-default variant is provably separated
   from strict-tso by at least one litmus program, and the control rows
   separate none. *)
let test_litmus_divergences () =
  let m = Lazy.force matrix in
  List.iter
    (fun (variant, case) ->
      check (variant ^ " diverges on " ^ case) true
        (Litmus.diverges m ~variant ~case))
    [ ("fence-nop", "litmus-publish-flag");
      ("fence-nop", "litmus-movnt-fence");
      ("epoch", "litmus-epoch-bare-fence");
      ("relaxed", "litmus-relaxed-publish");
      ("sb-bypass-off", "litmus-sb-bypass-probe");
      ("sb-fifo", "litmus-sb-fifo-probe") ];
  List.iter
    (fun case ->
      List.iter
        (fun variant ->
          check (variant ^ " agrees on control " ^ case) false
            (Litmus.diverges m ~variant ~case))
        m.Litmus.m_variants)
    [ "litmus-flush-fence-chain"; "litmus-clwb-unfenced";
      "litmus-clflush-strict"; "litmus-same-line-pair";
      "litmus-epoch-double-crash" ]

(* The matrix is an engine artifact, so it must be jobs-invariant like
   every report. *)
let test_litmus_matrix_jobs_invariant () =
  check "jobs=2 matrix identical" true
    (Litmus.run_matrix ~jobs:2 () = Lazy.force matrix)

let () =
  Alcotest.run "benchmarks"
    [
      ( "functional",
        [
          Alcotest.test_case "cceh" `Quick test_cceh_functional;
          Alcotest.test_case "cceh split/doubling" `Quick test_cceh_split_and_doubling;
          Alcotest.test_case "fast_fair" `Quick test_fast_fair_functional;
          Alcotest.test_case "p-art" `Quick test_p_art_functional;
          Alcotest.test_case "p-bwtree" `Quick test_p_bwtree_functional;
          Alcotest.test_case "p-clht" `Quick test_p_clht_functional;
          Alcotest.test_case "p-masstree" `Quick test_p_masstree_functional;
          Alcotest.test_case "pmdk btree" `Quick test_pmdk_btree_functional;
          Alcotest.test_case "pmdk ctree" `Quick test_pmdk_ctree_functional;
          Alcotest.test_case "pmdk rbtree" `Quick test_pmdk_rbtree_functional;
          Alcotest.test_case "pmdk hashmaps" `Quick test_pmdk_hashmaps_functional;
          Alcotest.test_case "memcached" `Quick test_memcached_functional;
          Alcotest.test_case "redis" `Quick test_redis_functional;
        ] );
      ( "extended-features",
        [
          Alcotest.test_case "fast_fair remove/range" `Quick test_fast_fair_remove_and_range;
          Alcotest.test_case "p-art node growth" `Quick test_p_art_node_growth;
          Alcotest.test_case "p-art leaf update" `Quick test_p_art_leaf_update;
          Alcotest.test_case "p-clht resize" `Quick test_p_clht_resize;
          Alcotest.test_case "p-bwtree delete/consolidate" `Quick
            test_p_bwtree_delete_consolidate;
          Alcotest.test_case "ctree remove" `Quick test_pmdk_ctree_remove;
          Alcotest.test_case "memcached delete/stats" `Quick test_memcached_delete_stats;
          Alcotest.test_case "redis del/incr" `Quick test_redis_del_incr;
          Alcotest.test_case "cceh crash consistency" `Slow
            test_cceh_crash_recovery_consistency;
          Alcotest.test_case "masstree multi-layer" `Quick test_p_masstree_multilayer;
          Alcotest.test_case "memcached lru/append/incr" `Quick test_memcached_lru_and_ops;
          Alcotest.test_case "undo tx commit/abort" `Quick test_undo_tx_commit_and_abort;
          Alcotest.test_case "undo tx crash atomicity" `Slow test_undo_tx_crash_atomicity;
          Alcotest.test_case "undo log race surface" `Slow test_undo_log_race_surface;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "fast_fair crash sweep" `Slow test_fast_fair_survives_any_crash;
          Alcotest.test_case "redis tx atomicity" `Slow test_redis_tx_atomicity;
          Alcotest.test_case "memcached checksums" `Slow
            test_memcached_checksum_rejects_torn_values;
        ] );
      ( "multithreaded",
        [
          Alcotest.test_case "cceh concurrent inserts" `Quick
            test_cceh_multithreaded_functional;
          Alcotest.test_case "clht concurrent inserts" `Quick
            test_clht_multithreaded_functional;
          Alcotest.test_case "cceh concurrent detection" `Slow
            test_cceh_multithreaded_detection;
        ] );
      ( "table-3",
        [
          Alcotest.test_case "CCEH" `Slow test_table3_cceh;
          Alcotest.test_case "FAST_FAIR" `Slow test_table3_fast_fair;
          Alcotest.test_case "P-ART" `Slow test_table3_p_art;
          Alcotest.test_case "P-BwTree" `Slow test_table3_p_bwtree;
          Alcotest.test_case "P-CLHT" `Slow test_table3_p_clht;
          Alcotest.test_case "P-Masstree" `Slow test_table3_p_masstree;
          Alcotest.test_case "19 total" `Slow test_table3_total_19;
        ] );
      ( "table-4",
        [
          Alcotest.test_case "PMDK ulog race" `Slow test_table4_pmdk;
          Alcotest.test_case "Memcached" `Slow test_table4_memcached;
          Alcotest.test_case "checksum benign" `Slow test_checksum_findings_are_benign;
        ] );
      ( "registry",
        [ Alcotest.test_case "complete" `Quick test_registry_complete ] );
      ( "litmus-matrix",
        [
          Alcotest.test_case "strict-tso is today's behaviour" `Slow
            test_litmus_strict_tso_is_default;
          Alcotest.test_case "golden table" `Slow test_litmus_matrix_golden;
          Alcotest.test_case "named divergences" `Slow test_litmus_divergences;
          Alcotest.test_case "jobs-invariant" `Slow
            test_litmus_matrix_jobs_invariant;
        ] );
    ]
