(* Command-line driver for the Yashme persistency-race detector.

   yashme list                          enumerate benchmark programs
   yashme check BENCH [--mode ...]      run the detector on one program
   yashme check-all [--mode ...]        run it on the whole suite
   yashme soak [STREAM...]              long-running randomized crash-testing service
   yashme replay CORPUS                 re-run recorded witnesses (regression gate)
   yashme minimize CORPUS               ddmin-shrink recorded witnesses
   yashme corpus merge|stats            manage witness corpora
   yashme profile TRACE                 hot-spot tables from a recorded trace
   yashme bench-diff BASE CUR           benchmark regression gate
   yashme runs LEDGER                   list runs recorded with --ledger
   yashme compare LEDGER A B            diff two ledger runs (counter deltas)
   yashme variants                      list persistency-model variants
   yashme litmus                        litmus suite x variant divergence matrix
   yashme tables                        print the reorder/compiler tables *)

open Cmdliner

let mode_conv =
  let parse = function
    | "prefix" -> Ok Yashme.Detector.Prefix
    | "baseline" -> Ok Yashme.Detector.Baseline
    | s -> Error (`Msg (Printf.sprintf "unknown detector mode %S (prefix|baseline)" s))
  in
  let print ppf = function
    | Yashme.Detector.Prefix -> Format.fprintf ppf "prefix"
    | Yashme.Detector.Baseline -> Format.fprintf ppf "baseline"
  in
  Arg.conv (parse, print)

let detector_mode =
  let doc = "Detection mode: $(b,prefix) (prefix-based expansion, the paper's \
             contribution) or $(b,baseline) (crash-in-window only)." in
  Arg.(value & opt mode_conv Yashme.Detector.Prefix & info [ "detector" ] ~doc)

let run_mode =
  let doc = "$(b,mc) model-checks every crash point; $(b,random) runs randomized \
             executions (see --execs); $(b,mc-recovery) model-checks two-crash \
             scenarios to find races in the recovery procedure itself." in
  Arg.(value
       & opt (enum [ ("mc", `Mc); ("random", `Random); ("mc-recovery", `Mc_recovery) ]) `Mc
       & info [ "mode" ] ~doc)

let execs =
  let doc = "Number of random executions in --mode random." in
  Arg.(value & opt int 20 & info [ "execs" ] ~doc)

let jobs =
  let doc = "Worker domains for the exploration engine.  Each crash plan is an \
             independent failure scenario; $(docv) > 1 spreads them over OCaml \
             domains.  The race report is identical for every job count." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~doc ~docv:"N")

let seed =
  let doc = "Random seed (schedules, crash points, cache cuts)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let variant_conv =
  let parse s =
    match Px86.Variant.of_label s with
    | Some v -> Ok v
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown persistency-model variant %S (try `yashme variants')" s))
  in
  let print ppf v = Format.pp_print_string ppf (Px86.Variant.label v) in
  Arg.conv (parse, print)

let variant_arg =
  let doc = "Persistency-model variant to detect under (see $(b,yashme \
             variants) for the built-ins, e.g. $(b,strict-tso), \
             $(b,fence-nop), $(b,epoch)).  The default, $(b,strict-tso), \
             is the paper's Px86 model and reproduces historical reports \
             byte-for-byte." in
  Arg.(value & opt variant_conv Px86.Variant.strict_tso
       & info [ "variant" ] ~doc ~docv:"VARIANT")

let show_benign =
  let doc = "Also list benign (checksum-validated) findings." in
  Arg.(value & flag & info [ "benign" ] ~doc)

let eadr_flag =
  let doc = "Detect under eADR persistency semantics (section 7.5): the cache              is in the persistence domain, so only stores whose cache commit              is not forced into the consistent prefix can race." in
  Arg.(value & flag & info [ "eadr" ] ~doc)

let no_coherence =
  let doc = "Ablation: disable the cache-coherence condition (2)." in
  Arg.(value & flag & info [ "no-coherence" ] ~doc)

let no_candidates =
  let doc = "Ablation: only check the store each load actually read." in
  Arg.(value & flag & info [ "no-candidates" ] ~doc)

let metrics_flag =
  let doc = "Collect and print observe-layer metrics (domain-sharded counters, \
             merged on read): per-phase executor operations, Px86 buffer \
             drains, detector candidates/prefix expansions/races raised vs \
             pruned.  Totals are identical for every --jobs count." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let trace_out =
  let doc = "Record a trace of the run and write it to $(docv): Chrome \
             about://tracing JSON (open in chrome://tracing or Perfetto), or \
             JSONL when $(docv) ends in .jsonl.  Spans cover engine workers, \
             scenarios, executions and crash materializations, laned per \
             worker domain." in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"FILE")

let quiet_flag =
  let doc = "Suppress warnings (e.g. the Cut_random fallback to --jobs 1).  \
             Alias for $(b,--log-level off)." in
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc)

let log_level_conv =
  let parse s =
    match Observe.Log.level_of_string s with
    | Some l -> Ok l
    | None ->
        Error (`Msg (Printf.sprintf "unknown log level %S (off|warn|info|debug)" s))
  in
  let print ppf l = Format.pp_print_string ppf (Observe.Log.level_to_string l) in
  Arg.conv (parse, print)

let log_level_arg =
  let doc = "Stderr logging threshold: $(b,off), $(b,warn) (default), \
             $(b,info) or $(b,debug).  Takes precedence over --quiet; the \
             trace mirror of log messages is unaffected." in
  Arg.(value & opt (some log_level_conv) None & info [ "log-level" ] ~doc ~docv:"LEVEL")

let coverage_flag =
  let doc = "Account crash-space coverage per program (crash-plan indices \
             exercised, crash points fired, detector expansions vs pruned \
             checks, distinct cache lines materialized) and print a coverage \
             block after each report.  Totals are identical for every --jobs \
             count; the race report itself is byte-identical with or without \
             this flag." in
  Arg.(value & flag & info [ "coverage" ] ~doc)

let coverage_out =
  let doc = "Also write the merged coverage snapshot to $(docv) as JSONL (one \
             flat object per program, deterministic field order).  Implies \
             --coverage." in
  Arg.(value & opt (some string) None & info [ "coverage-out" ] ~doc ~docv:"FILE")

let progress_flag =
  let doc = "Print a live progress heartbeat to stderr (scenarios done/total, \
             rate, races and faults so far, ETA), throttled to twice a \
             second.  Purely informational: the report is unaffected." in
  Arg.(value & flag & info [ "progress" ] ~doc)

let progress_out =
  let doc = "Stream progress updates to $(docv) as JSONL (one flat object per \
             emission).  Independent of --progress: without it, nothing is \
             printed to stderr." in
  Arg.(value & opt (some string) None & info [ "progress-out" ] ~doc ~docv:"FILE")

let max_ops_arg =
  let doc = "Fuel budget: terminate any execution phase after $(docv) scheduled \
             operations and mark the scenario diverged.  Deterministic — the \
             same budget trips at the same operation on every run and every \
             --jobs count." in
  Arg.(value & opt (some int) None & info [ "max-ops" ] ~doc ~docv:"N")

let timeout_arg =
  let doc = "Wall-clock budget per execution phase, in seconds.  A \
             nondeterministic last-resort valve: prefer --max-ops when \
             reports must stay reproducible." in
  Arg.(value & opt (some float) None & info [ "timeout" ] ~doc ~docv:"SECONDS")

let corpus_out =
  let doc = "Write every distinct race / recovery-failure witness found during \
             this run to $(docv) as a JSONL corpus (overwriting it).  Witnesses \
             are deduplicated by stable identity key, so the file is \
             byte-identical for every --jobs count.  Re-check them later with \
             $(b,yashme replay), shrink them with $(b,yashme minimize)." in
  Arg.(value & opt (some string) None & info [ "corpus-out" ] ~doc ~docv:"FILE")

let oracle_flag =
  let doc = "Run the crash-consistency invariant oracle alongside the race \
             detector: infer likely persistence invariants (ordering and \
             same-line atomicity) from crash-free reference executions of the \
             program's observe hook, replay every crash chain under the \
             lowerbound persist cut, and diff the recovered observable state \
             against the invariant-reachable states.  Violations are \
             deduplicated by stable key and reported (and written to \
             --corpus-out) alongside races; an [oracle] block lists the \
             inferred invariant set.  Programs without an observe hook run \
             unchanged.  Without this flag no oracle work runs at all and \
             the report is byte-identical to earlier builds." in
  Arg.(value & flag & info [ "oracle" ] ~doc)

let fail_fast_flag =
  let doc = "Stop at the first scenario fault: cancel the remaining batch \
             cooperatively and re-raise the fault's exception with its \
             original backtrace.  Without it, faults are contained and \
             reported alongside the races." in
  Arg.(value & flag & info [ "fail-fast" ] ~doc)

let attribution_flag =
  let doc = "Collect per-scenario cost attribution (queue-wait vs work wall \
             clock, per-phase time, GC minor/major words, snapshot bytes \
             copied, detector clock-vector and prefix-expansion charges) and \
             print an [attribution] cost-center table after each report.  \
             Counts and charged units are identical for every --jobs count; \
             wall clocks and GC words are not.  The race report itself is \
             byte-identical with or without this flag." in
  Arg.(value & flag & info [ "attribution" ] ~doc)

let attribution_out =
  let doc = "Also write the cost-center table's jobs-invariant projection \
             (counts and deterministic charged units; no wall clocks) to \
             $(docv) as JSONL, one flat object per center.  Byte-identical \
             for every --jobs count.  Implies --attribution.  Render it \
             later with $(b,yashme profile --attribution)." in
  Arg.(value & opt (some string) None & info [ "attribution-out" ] ~doc ~docv:"FILE")

let ledger_arg =
  let doc = "Append one versioned run-manifest line to $(docv) (JSONL): \
             program, variant, jobs, engine stats, metrics and coverage \
             digests, cost centers, witness count.  Implies collecting \
             metrics, coverage and attribution (without printing their \
             blocks).  Inspect with $(b,yashme runs), diff with $(b,yashme \
             compare)." in
  Arg.(value & opt (some string) None & info [ "ledger" ] ~doc ~docv:"FILE")

let run_label_arg =
  let doc = "Run label recorded in the ledger entry (default: the program \
             name).  $(b,yashme compare) selects runs by label or 1-based \
             ordinal." in
  Arg.(value & opt (some string) None & info [ "run-label" ] ~doc ~docv:"LABEL")

(* Arm the observe layer before a detection run... *)
let observe_setup ~log_level ~coverage ~progress ~progress_out ~metrics
    ?(attribution = false) ~trace_out ~quiet () =
  (match log_level with
  | Some l -> Observe.Log.set_level l
  | None -> Observe.Log.set_quiet quiet);
  if metrics then Observe.Metrics.enable ();
  if attribution then Observe.Attribution.enable ();
  if coverage then begin
    Observe.Coverage.enable ();
    Observe.Coverage.reset ()
  end;
  if progress || progress_out <> None then
    Observe.Progress.start ~heartbeat:progress ?jsonl:progress_out ();
  if trace_out <> None then Observe.Trace.start ()

(* Progress winds down before the report prints, so the final
   heartbeat never interleaves with findings. *)
let finish_progress () = ignore (Observe.Progress.stop ())

(* The merged coverage snapshot as JSONL: one flat object per program,
   through the corpus codec so field order and number rendering are
   deterministic.  Written crash-safely (tmp + atomic rename) like
   every other file the driver emits. *)
let write_coverage_file = function
  | None -> ()
  | Some file ->
      let stats = Observe.Coverage.snapshot () in
      Yashme_util.Atomic_file.write file
        (String.concat ""
           (List.map
              (fun s ->
                Pm_corpus.Json.encode_obj (Observe.Coverage.fields s) ^ "\n")
              stats));
      Printf.printf "coverage: %d program(s) written to %s\n" (List.length stats)
        file

let attach_coverage ~coverage ~variant (p : Pm_harness.Program.t) r =
  if not coverage then r
  else
    match
      Observe.Coverage.find ~variant:(Px86.Variant.label variant)
        p.Pm_harness.Program.name
    with
    | Some c -> Pm_harness.Report.with_coverage r c
    | None -> r

(* The jobs-invariant attribution projection as JSONL, one flat object
   per cost center, through the corpus codec (like coverage-out).
   Also crash-safe via tmp + atomic rename. *)
let write_attribution_file rows = function
  | None -> ()
  | Some file ->
      Yashme_util.Atomic_file.write file
        (String.concat ""
           (List.map
              (fun r ->
                Pm_corpus.Json.encode_obj (Observe.Attribution.fields r) ^ "\n")
              rows));
      Printf.printf "attribution: %d cost center(s) written to %s\n"
        (List.length rows) file

let mode_label = function
  | `Mc -> "mc"
  | `Mc_recovery -> "mc-recovery"
  | `Random -> "random"

(* One run-manifest line, built from what the run attached to the
   report (metrics diff, coverage, attribution rows) plus the engine
   stats.  [--ledger] forces all three to be collected, so the digests
   and cost centers are always populated here. *)
let append_ledger ~ledger ~run_label ~mode ~seed ~witnesses
    ~(stats : Pm_harness.Engine.stats) (r : Pm_harness.Report.t) =
  match ledger with
  | None -> ()
  | Some file ->
      let entry =
        {
          Observe.Ledger.e_version = Observe.Ledger.version;
          e_run =
            Option.value run_label ~default:r.Pm_harness.Report.program;
          e_ts = Unix.gettimeofday ();
          e_program = r.Pm_harness.Report.program;
          e_variant = r.Pm_harness.Report.variant;
          e_mode = mode;
          e_jobs = stats.Pm_harness.Engine.jobs;
          e_seed = seed;
          e_scenarios = stats.Pm_harness.Engine.scenarios;
          e_completed = stats.Pm_harness.Engine.completed;
          e_faulted = stats.Pm_harness.Engine.faulted;
          e_diverged = stats.Pm_harness.Engine.diverged;
          e_executions = stats.Pm_harness.Engine.executions;
          e_ops = stats.Pm_harness.Engine.ops;
          e_races = List.length (Pm_harness.Report.real r);
          e_benign = List.length (Pm_harness.Report.benign r);
          e_raw_races = r.Pm_harness.Report.raw_races;
          e_recovery_failures =
            List.length r.Pm_harness.Report.recovery_failures;
          e_witnesses = witnesses;
          e_elapsed_s = stats.Pm_harness.Engine.elapsed_s;
          e_cpu_s = stats.Pm_harness.Engine.cpu_s;
          e_metrics_digest =
            Observe.Ledger.digest_counters r.Pm_harness.Report.metrics;
          e_coverage_digest =
            (match r.Pm_harness.Report.coverage with
            | Some c ->
                Observe.Ledger.digest_fields (Observe.Coverage.fields c)
            | None -> "");
          e_cost =
            Observe.Ledger.costs_of_rows r.Pm_harness.Report.attribution;
        }
      in
      Pm_corpus.Ledger_store.append file entry;
      Printf.printf "ledger: run %S appended to %s\n"
        entry.Observe.Ledger.e_run file

(* ...and flush it afterwards: write the trace file, if one was asked
   for. *)
let write_trace = function
  | Some file ->
      Observe.Trace.stop ();
      Observe.Trace.write file;
      Printf.printf "trace: %d event(s) written to %s\n"
        (Observe.Trace.event_count ()) file
  | None -> ()

let print_metrics_summary ~title metrics =
  Printf.printf "%s:\n" title;
  let nonzero = List.filter (fun (_, v) -> v <> 0) metrics in
  if nonzero = [] then print_endline "  (none recorded)"
  else List.iter (fun (name, v) -> Printf.printf "  %-42s %d\n" name v) nonzero

let options ?(eadr = false) ?(no_coherence = false) ?(no_candidates = false)
    ?(variant = Px86.Variant.strict_tso) ?max_ops ?max_wall_s mode seed =
  { Pm_harness.Runner.default_options with
    mode; seed; eadr; variant; coherence = not no_coherence;
    check_candidates = not no_candidates; max_ops; max_wall_s }

let outcome_program ?(oracle = false) run_mode opts ~jobs ~fail_fast execs
    (p : Pm_harness.Program.t) =
  match run_mode with
  | `Mc ->
      Pm_harness.Runner.model_check_outcome ~options:opts ~jobs ~fail_fast
        ~oracle p
  | `Mc_recovery ->
      Pm_harness.Runner.model_check_recovery_outcome ~options:opts ~jobs
        ~fail_fast ~oracle p
  | `Random ->
      Pm_harness.Runner.random_mode_outcome ~options:opts ~jobs ~fail_fast
        ~oracle ~execs p

(* Replay/minimize rebuild scenarios by registry name; demos are
   findable too, so corpora recorded from them replay as well.  Soak
   witnesses carry encoded "soak:STREAM:MIX:DIST:OPS:SEED" names and
   rebuild through the soak stream registry. *)
let lookup name =
  match Pm_benchmarks.Registry.find name with
  | exception Not_found -> Pm_benchmarks.Registry.find_soak_program name
  | p -> Some p

let write_corpus ~corpus_out extractions =
  match corpus_out with
  | None -> ()
  | Some file ->
      let witnesses, folded =
        Pm_corpus.Corpus.merge
          (List.map
             (fun (e : Pm_corpus.Witness.extraction) -> e.Pm_corpus.Witness.witnesses)
             extractions)
      in
      Pm_corpus.Corpus.save file witnesses;
      let dups =
        folded
        + List.fold_left
            (fun acc (e : Pm_corpus.Witness.extraction) ->
              acc + e.Pm_corpus.Witness.duplicates)
            0 extractions
      in
      Printf.printf "corpus: %d witness(es) written to %s (%d duplicate observation(s) folded)\n"
        (List.length witnesses) file dups

let print_report show_benign (r : Pm_harness.Report.t) =
  if show_benign then print_endline (Pm_harness.Report.to_string r)
  else begin
    let real = Pm_harness.Report.real r in
    Printf.printf "%s: %d distinct persistency race(s) in %d execution(s)\n"
      r.Pm_harness.Report.program (List.length real) r.Pm_harness.Report.executions;
    List.iter
      (fun (f : Pm_harness.Report.finding) ->
        Printf.printf "  [race] %s (%d report%s)\n" f.Pm_harness.Report.label
          f.Pm_harness.Report.count
          (if f.Pm_harness.Report.count = 1 then "" else "s"))
      real;
    (* Recovery failures and consistency violations are real findings;
       contained-fault/divergence counts only appear when non-zero,
       like in Report.pp. *)
    List.iter
      (fun rf ->
        Printf.printf "  %s\n"
          (Format.asprintf "%a" Pm_harness.Report.pp_recovery_failure rf))
      r.Pm_harness.Report.recovery_failures;
    List.iter
      (fun cv ->
        Printf.printf "  %s\n"
          (Format.asprintf "%a" Pm_harness.Report.pp_consistency_violation cv))
      r.Pm_harness.Report.consistency_violations;
    if r.Pm_harness.Report.fault_count > 0 || r.Pm_harness.Report.diverged > 0
    then
      Printf.printf "  [contained] %d scenario fault(s), %d diverged (budget)\n"
        r.Pm_harness.Report.fault_count r.Pm_harness.Report.diverged
  end

let list_cmd =
  let term =
    Term.(
      const (fun () ->
          List.iter
            (fun (p : Pm_harness.Program.t) ->
              print_endline p.Pm_harness.Program.name)
            Pm_benchmarks.Registry.all;
          (* Demos and litmus programs are findable by name but never
             part of check-all; mark them rather than silently omitting
             them. *)
          List.iter
            (fun (p : Pm_harness.Program.t) ->
              Printf.printf "%-24s (demo: fault injection, excluded from check-all)\n"
                p.Pm_harness.Program.name)
            Pm_benchmarks.Registry.demos;
          List.iter
            (fun (p : Pm_harness.Program.t) ->
              Printf.printf "%-24s (litmus: variant validation, excluded from check-all)\n"
                p.Pm_harness.Program.name)
            Pm_benchmarks.Registry.litmus)
      $ const ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmark programs") term

let check_cmd =
  let bench =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH"
           ~doc:"Benchmark name (see $(b,yashme list)).")
  in
  let run bench run_mode dmode execs jobs seed variant show_benign eadr
      no_coherence no_candidates metrics trace_out quiet max_ops timeout
      fail_fast oracle corpus_out log_level coverage coverage_out progress
      progress_out attribution attribution_out ledger run_label =
    match Pm_benchmarks.Registry.find bench with
    | exception Not_found ->
        Printf.eprintf "unknown benchmark %S; try `yashme list'\n" bench;
        exit 1
    | p ->
        (* Show vs collect: --ledger needs metrics, coverage and
           attribution collected for its digests and cost centers, but
           printing their blocks stays gated on the explicit flags. *)
        let coverage_show = coverage || coverage_out <> None in
        let att_show = attribution || attribution_out <> None in
        let collect_metrics = metrics || ledger <> None in
        let collect_coverage = coverage_show || ledger <> None in
        let collect_att = att_show || ledger <> None in
        observe_setup ~log_level ~coverage:collect_coverage ~progress
          ~progress_out ~metrics:collect_metrics ~attribution:collect_att
          ~trace_out ~quiet ();
        let before =
          if collect_metrics then Observe.Metrics.snapshot () else []
        in
        let att_before =
          if collect_att then Observe.Attribution.snapshot () else []
        in
        let o =
          outcome_program ~oracle run_mode
            (options ~eadr ~no_coherence ~no_candidates ~variant ?max_ops
               ?max_wall_s:timeout dmode seed)
            ~jobs ~fail_fast execs p
        in
        finish_progress ();
        let r = o.Pm_harness.Runner.o_report in
        let r =
          if collect_metrics then
            Pm_harness.Report.with_metrics r
              (Observe.Metrics.diff before (Observe.Metrics.snapshot ()))
          else r
        in
        let r = attach_coverage ~coverage:collect_coverage ~variant p r in
        let r =
          if collect_att then
            Pm_harness.Report.with_attribution r
              (Observe.Attribution.diff att_before
                 (Observe.Attribution.snapshot ()))
          else r
        in
        print_report show_benign r;
        if oracle then print_endline (Pm_harness.Report.oracle_to_string r);
        if metrics then print_endline (Pm_harness.Report.metrics_to_string r);
        if coverage_show then
          print_endline (Pm_harness.Report.coverage_to_string r);
        if att_show then
          print_endline (Pm_harness.Report.attribution_to_string r);
        write_coverage_file coverage_out;
        write_attribution_file r.Pm_harness.Report.attribution attribution_out;
        if corpus_out <> None || ledger <> None then begin
          let ex =
            Pm_corpus.Witness.of_outcome ~program:p.Pm_harness.Program.name o
          in
          if corpus_out <> None then write_corpus ~corpus_out [ ex ];
          append_ledger ~ledger ~run_label ~mode:(mode_label run_mode) ~seed
            ~witnesses:(List.length ex.Pm_corpus.Witness.witnesses)
            ~stats:o.Pm_harness.Runner.o_stats r
        end;
        write_trace trace_out
  in
  let term =
    Term.(
      const run $ bench $ run_mode $ detector_mode $ execs $ jobs $ seed
      $ variant_arg $ show_benign $ eadr_flag $ no_coherence $ no_candidates
      $ metrics_flag $ trace_out $ quiet_flag $ max_ops_arg $ timeout_arg
      $ fail_fast_flag $ oracle_flag $ corpus_out $ log_level_arg
      $ coverage_flag $ coverage_out $ progress_flag $ progress_out
      $ attribution_flag $ attribution_out $ ledger_arg $ run_label_arg)
  in
  Cmd.v (Cmd.info "check" ~doc:"Detect persistency races in one benchmark") term

let witness_cmd =
  let bench =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH"
           ~doc:"Benchmark name (see $(b,yashme list)).")
  in
  let flush_point =
    let doc = "Crash before the n-th flush/fence; -1 crashes at program end." in
    Arg.(value & opt int (-1) & info [ "at" ] ~doc)
  in
  let run bench n seed variant =
    match Pm_benchmarks.Registry.find bench with
    | exception Not_found ->
        Printf.eprintf "unknown benchmark %S; try `yashme list'\n" bench;
        exit 1
    | p ->
        let plan =
          if n < 0 then Pm_runtime.Executor.Crash_at_end
          else Pm_runtime.Executor.Crash_before_flush n
        in
        let opts = { Pm_harness.Runner.default_options with seed; variant } in
        let detector, trace = Pm_harness.Runner.run_once_traced ~options:opts ~plan p in
        (match Yashme.Detector.races detector with
        | [] -> print_endline "no persistency race in this execution"
        | race :: _ ->
            print_endline
              (Pm_harness.Witness.explain
                 ~variant:(Px86.Variant.label variant)
                 ~trace ~detector ~race ()))
  in
  let term = Term.(const run $ bench $ flush_point $ seed $ variant_arg) in
  Cmd.v
    (Cmd.info "witness"
       ~doc:"Run one crash scenario and print a race witness (pre-crash prefix E+)")
    term

let check_all_cmd =
  let run run_mode dmode execs jobs seed variant show_benign metrics trace_out
      quiet max_ops timeout fail_fast oracle corpus_out log_level coverage
      coverage_out progress progress_out attribution attribution_out ledger
      run_label =
    let coverage_show = coverage || coverage_out <> None in
    let att_show = attribution || attribution_out <> None in
    let collect_metrics = metrics || ledger <> None in
    let collect_coverage = coverage_show || ledger <> None in
    let collect_att = att_show || ledger <> None in
    observe_setup ~log_level ~coverage:collect_coverage ~progress ~progress_out
      ~metrics:collect_metrics ~attribution:collect_att ~trace_out ~quiet ();
    let suite_before =
      if collect_metrics then Observe.Metrics.snapshot () else []
    in
    let suite_att_before =
      if collect_att then Observe.Attribution.snapshot () else []
    in
    let total = ref 0 in
    let extractions = ref [] in
    List.iter
      (fun (p : Pm_harness.Program.t) ->
        let before =
          if collect_metrics then Observe.Metrics.snapshot () else []
        in
        let att_before =
          if collect_att then Observe.Attribution.snapshot () else []
        in
        let o =
          outcome_program ~oracle run_mode
            (options ~variant ?max_ops ?max_wall_s:timeout dmode seed)
            ~jobs ~fail_fast execs p
        in
        let r = o.Pm_harness.Runner.o_report in
        let r =
          if collect_metrics then
            Pm_harness.Report.with_metrics r
              (Observe.Metrics.diff before (Observe.Metrics.snapshot ()))
          else r
        in
        let r = attach_coverage ~coverage:collect_coverage ~variant p r in
        let r =
          if collect_att then
            Pm_harness.Report.with_attribution r
              (Observe.Attribution.diff att_before
                 (Observe.Attribution.snapshot ()))
          else r
        in
        if corpus_out <> None || ledger <> None then begin
          let ex =
            Pm_corpus.Witness.of_outcome ~program:p.Pm_harness.Program.name o
          in
          if corpus_out <> None then extractions := ex :: !extractions;
          append_ledger ~ledger ~run_label ~mode:(mode_label run_mode) ~seed
            ~witnesses:(List.length ex.Pm_corpus.Witness.witnesses)
            ~stats:o.Pm_harness.Runner.o_stats r
        end;
        total := !total + List.length (Pm_harness.Report.real r);
        print_report show_benign r;
        if oracle then print_endline (Pm_harness.Report.oracle_to_string r);
        if metrics then print_endline (Pm_harness.Report.metrics_to_string r);
        if coverage_show then
          print_endline (Pm_harness.Report.coverage_to_string r);
        if att_show then
          print_endline (Pm_harness.Report.attribution_to_string r);
        print_newline ())
      Pm_benchmarks.Registry.all;
    finish_progress ();
    Printf.printf "total distinct persistency races: %d\n" !total;
    write_corpus ~corpus_out (List.rev !extractions);
    write_coverage_file coverage_out;
    if attribution_out <> None then
      write_attribution_file
        (Observe.Attribution.diff suite_att_before
           (Observe.Attribution.snapshot ()))
        attribution_out;
    if metrics then
      print_metrics_summary ~title:"metrics summary (whole suite)"
        (Observe.Metrics.diff suite_before (Observe.Metrics.snapshot ()));
    write_trace trace_out
  in
  let term =
    Term.(
      const run $ run_mode $ detector_mode $ execs $ jobs $ seed $ variant_arg
      $ show_benign $ metrics_flag $ trace_out $ quiet_flag $ max_ops_arg
      $ timeout_arg $ fail_fast_flag $ oracle_flag $ corpus_out $ log_level_arg
      $ coverage_flag $ coverage_out $ progress_flag $ progress_out
      $ attribution_flag $ attribution_out $ ledger_arg $ run_label_arg)
  in
  Cmd.v (Cmd.info "check-all" ~doc:"Detect persistency races across the whole suite") term

let trace_lint_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"File to validate: JSONL when the name ends in .jsonl, SVG \
                 (timeline export) when it ends in .svg, Chrome trace JSON \
                 otherwise.")
  in
  let run file =
    let check =
      if Filename.check_suffix file ".svg" then
        Observe.Timeline.check_svg_file
      else Observe.Trace.check_file
    in
    match check file with
    | Ok () -> Printf.printf "%s: well-formed\n" file
    | Error msg ->
        Printf.eprintf "%s: malformed trace: %s\n" file msg;
        exit 1
    | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "trace-lint"
       ~doc:"Validate a trace file emitted by --trace-out (JSON \
             well-formedness), or an SVG timeline emitted by yashme scaling \
             --svg (XML well-formedness)")
    Term.(const run $ file)

let profile_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE"
           ~doc:"Trace file written by --trace-out (JSONL when the name ends \
                 in .jsonl, Chrome trace JSON otherwise).")
  in
  let top =
    let doc = "Rows per hot-spot table." in
    Arg.(value & opt int 15 & info [ "top" ] ~doc ~docv:"N")
  in
  let attribution =
    let doc = "Treat $(docv) as a cost-attribution JSONL file (written by \
               $(b,--attribution-out)) and render its jobs-invariant \
               cost-center table instead of trace hot-spots." in
    Arg.(value & flag & info [ "attribution" ] ~doc)
  in
  let run_attribution file =
    match In_channel.with_open_bin file In_channel.input_all with
    | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | data ->
        let lines =
          List.filter
            (fun l -> String.trim l <> "")
            (String.split_on_char '\n' data)
        in
        let rec parse i acc = function
          | [] -> Ok (List.rev acc)
          | l :: rest -> (
              match Pm_corpus.Json.decode_obj l with
              | Error e -> Error (Printf.sprintf "line %d: %s" i e)
              | Ok fs -> (
                  match Observe.Attribution.of_fields fs with
                  | Error e -> Error (Printf.sprintf "line %d: %s" i e)
                  | Ok row -> parse (i + 1) (row :: acc) rest))
        in
        (match parse 1 [] lines with
        | Error msg ->
            Printf.eprintf "%s: %s\n" file msg;
            exit 1
        | Ok rows ->
            print_endline (Observe.Attribution.to_string ~timing:false rows))
  in
  let run file top attribution =
    if attribution then run_attribution file
    else
    match Observe.Profile.parse_file file with
    | Error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
    | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | Ok events ->
        let fmt_us us = Printf.sprintf "%.3fms" (float_of_int us /. 1000.) in
        let take n l = List.filteri (fun i _ -> i < n) l in
        let rows_of rows =
          List.map
            (fun (r : Observe.Profile.row) ->
              [ r.Observe.Profile.r_key;
                string_of_int r.Observe.Profile.r_count;
                fmt_us r.Observe.Profile.r_total_us;
                fmt_us r.Observe.Profile.r_self_us ])
            (take top rows)
        in
        Printf.printf "%s: %d event(s)\n\n" file (List.length events);
        print_endline "hot spots by span name (self time, descending):";
        print_endline
          (Yashme_util.Pretty.table
             ~header:[ "span"; "count"; "total"; "self" ]
             (rows_of (Observe.Profile.by_name events)));
        print_newline ();
        print_endline "by category:";
        print_endline
          (Yashme_util.Pretty.table
             ~header:[ "category"; "count"; "total"; "self" ]
             (rows_of (Observe.Profile.by_cat events)));
        print_newline ();
        print_endline "lanes (pid/tid = engine worker slots):";
        print_endline
          (Yashme_util.Pretty.table
             ~header:[ "pid"; "tid"; "spans"; "instants"; "busy" ]
             (List.map
                (fun (l : Observe.Profile.lane) ->
                  [ string_of_int l.Observe.Profile.l_pid;
                    string_of_int l.Observe.Profile.l_tid;
                    string_of_int l.Observe.Profile.l_spans;
                    string_of_int l.Observe.Profile.l_instants;
                    fmt_us l.Observe.Profile.l_busy_us ])
                (Observe.Profile.lanes events)));
        (* The timeline reconstruction classifies the same lanes into
           busy / queue-wait / idle; skipped silently for traces
           without complete spans (e.g. instants-only logs). *)
        (match Observe.Timeline.of_events events with
        | Error _ -> ()
        | Ok t ->
            print_newline ();
            print_endline (Observe.Timeline.to_string t))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Aggregate a recorded trace into per-phase/per-lane self-time \
             hot-spot tables; with $(b,--attribution), render a cost-center \
             table from an attribution JSONL file")
    Term.(const run $ file $ top $ attribution)

let bench_diff_cmd =
  let baseline =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BASELINE"
           ~doc:"Committed bench summary (JSONL, written by bench --out).")
  in
  let current =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"CURRENT"
           ~doc:"Fresh bench summary to gate against the baseline.")
  in
  let tolerance =
    let doc = "Allowed regression, in percent of the baseline value." in
    Arg.(value & opt float 10. & info [ "tolerance" ] ~doc ~docv:"PCT")
  in
  let metric =
    let doc = "Higher-is-better numeric field to compare." in
    Arg.(value & opt string "ops_per_s" & info [ "metric" ] ~doc ~docv:"NAME")
  in
  let scaling =
    let doc = "Judge the scaling metric set instead of a single metric: \
               $(b,speedup) and $(b,efficiency), both higher-is-better, per \
               baseline row.  Rows written by $(b,bench --jobs-sweep) carry \
               one (bench, jobs) pair each, so every jobs level gates \
               independently." in
    Arg.(value & flag & info [ "scaling" ] ~doc)
  in
  let run baseline current tolerance metric scaling =
    let load path =
      match Pm_corpus.Bench_gate.load path with
      | Ok entries -> entries
      | Error msg ->
          Printf.eprintf "%s: %s\n" path msg;
          exit 2
    in
    let b = load baseline in
    let c = load current in
    let o =
      if scaling then
        Pm_corpus.Bench_gate.diff_metrics
          ~metrics:Pm_corpus.Bench_gate.scaling_metrics ~tolerance ~baseline:b
          ~current:c ()
      else Pm_corpus.Bench_gate.diff ~metric ~tolerance ~baseline:b ~current:c ()
    in
    print_endline (Pm_corpus.Bench_gate.outcome_to_string o);
    if not o.Pm_corpus.Bench_gate.passed then exit 1
  in
  Cmd.v
    (Cmd.info "bench-diff"
       ~doc:"Gate a fresh bench summary against a committed baseline; exits \
             non-zero when the metric regresses beyond the tolerance (or a \
             baseline benchmark went missing).  With $(b,--scaling), gates \
             speedup and parallel efficiency instead of a single metric")
    Term.(const run $ baseline $ current $ tolerance $ metric $ scaling)

let scaling_cmd =
  let progs =
    Arg.(value & pos_all string [] & info [] ~docv:"BENCH"
           ~doc:"Benchmark programs to sweep (default: CCEH, Fast_Fair and \
                 Memcached, the throughput-bench set).")
  in
  let jobs_list_arg =
    let doc = "Comma-separated worker-domain counts to sweep, e.g. \
               $(b,1,2,4).  The lowest level is the speedup reference." in
    Arg.(value & opt string "1,2,4" & info [ "jobs-list" ] ~doc ~docv:"LIST")
  in
  let repeats_arg =
    let doc = "Interleaved measurement passes per jobs level; the best \
               elapsed per level wins (evens out warmup bias)." in
    Arg.(value & opt int 1 & info [ "repeats" ] ~doc ~docv:"N")
  in
  let out_arg =
    let doc = "Write one flat JSONL row per (program, jobs) level to $(docv): \
               the jobs-invariant projection first, then the wall-clock \
               class (speedup, efficiency, serial fraction, loss centers)." in
    Arg.(value & opt (some string) None & info [ "out" ] ~doc ~docv:"FILE")
  in
  let projection_out_arg =
    let doc = "Write only the jobs-invariant projection rows to $(docv).  \
               Byte-identical for any $(b,--jobs-list) covering the same \
               levels in any order — CI cmp(1)s two of these." in
    Arg.(value & opt (some string) None
           & info [ "projection-out" ] ~doc ~docv:"FILE")
  in
  let svg_arg =
    let doc = "Write an SVG lane chart of the last program's top-jobs run to \
               $(docv) (validate with $(b,yashme trace-lint))." in
    Arg.(value & opt (some string) None & info [ "svg" ] ~doc ~docv:"FILE")
  in
  let timeline_flag =
    let doc = "Print the per-domain timeline (ASCII lane chart plus the \
               utilization/idle-gap table) of each program's top-jobs run." in
    Arg.(value & flag & info [ "timeline" ] ~doc)
  in
  let run progs jobs_list repeats seed variant out projection_out svg_file
      timeline quiet log_level =
    let levels_asked =
      List.sort_uniq compare
        (List.filter_map
           (fun t -> int_of_string_opt (String.trim t))
           (String.split_on_char ',' jobs_list))
    in
    if levels_asked = [] || List.exists (fun j -> j < 1) levels_asked then begin
      Printf.eprintf "bad --jobs-list %S: need comma-separated integers >= 1\n"
        jobs_list;
      exit 2
    end;
    let programs =
      match progs with
      | [] ->
          [ Pm_benchmarks.Cceh.program; Pm_benchmarks.Fast_fair.program;
            Pm_benchmarks.Memcached.program ]
      | names ->
          List.map
            (fun name ->
              match lookup name with
              | Some p -> p
              | None ->
                  Printf.eprintf "unknown benchmark %S (see `yashme list')\n"
                    name;
                  exit 2)
            names
    in
    observe_setup ~log_level ~coverage:false ~progress:false ~progress_out:None
      ~metrics:false ~attribution:true ~trace_out:None ~quiet ();
    let opts = { Pm_harness.Runner.default_options with seed; variant } in
    let top = List.fold_left max 1 levels_asked in
    let last_timeline = ref None in
    (* One engine run at [jobs] with the cost-center window around it;
       traced runs additionally reconstruct the per-domain timeline. *)
    let run_level ~trace (p : Pm_harness.Program.t) jobs =
      if trace then Observe.Trace.start ();
      let att0 = Observe.Attribution.snapshot () in
      let o = Pm_harness.Runner.model_check_outcome ~options:opts ~jobs p in
      let att =
        Observe.Attribution.diff att0 (Observe.Attribution.snapshot ())
      in
      if trace then begin
        Observe.Trace.stop ();
        let events = Observe.Trace.events () in
        Observe.Trace.clear ();
        match Observe.Timeline.of_events events with
        | Ok t ->
            last_timeline := Some (p.Pm_harness.Program.name, jobs, t);
            if timeline then begin
              Printf.printf "%s timeline (jobs=%d):\n"
                p.Pm_harness.Program.name jobs;
              print_endline (Observe.Timeline.ascii t);
              print_endline (Observe.Timeline.to_string t);
              print_newline ()
            end
        | Error msg ->
            Observe.Log.warn
              (Printf.sprintf "timeline reconstruction failed: %s" msg)
      end;
      let stats = o.Pm_harness.Runner.o_stats in
      let r = o.Pm_harness.Runner.o_report in
      let ex =
        Pm_corpus.Witness.of_outcome ~program:p.Pm_harness.Program.name o
      in
      let snapshot_bytes, queue_wait_us, snapshot_us, merge_us, gc_minor,
          gc_major =
        Observe.Scaling.of_attribution att
      in
      {
        Observe.Scaling.v_jobs = stats.Pm_harness.Engine.jobs;
        v_elapsed_s = stats.Pm_harness.Engine.elapsed_s;
        v_cpu_s = stats.Pm_harness.Engine.cpu_s;
        v_scenarios = stats.Pm_harness.Engine.scenarios;
        v_completed = stats.Pm_harness.Engine.completed;
        v_faulted = stats.Pm_harness.Engine.faulted;
        v_executions = stats.Pm_harness.Engine.executions;
        v_ops = stats.Pm_harness.Engine.ops;
        v_races = List.length (Pm_harness.Report.real r);
        v_witnesses = List.length ex.Pm_corpus.Witness.witnesses;
        v_snapshot_bytes = snapshot_bytes;
        v_queue_wait_us = queue_wait_us;
        v_snapshot_us = snapshot_us;
        v_merge_us = merge_us;
        v_gc_minor_words = gc_minor;
        v_gc_major_words = gc_major;
      }
    in
    let rows = ref [] and projection_rows = ref [] in
    List.iter
      (fun (p : Pm_harness.Program.t) ->
        let name = p.Pm_harness.Program.name in
        (* Interleaved best-of-N, like the bench: each pass visits every
           level before any level repeats, so no level systematically
           runs cold.  The top level of the first pass is traced for
           the timeline artifacts. *)
        let best : (int, Observe.Scaling.level) Hashtbl.t = Hashtbl.create 8 in
        for rep = 1 to max 1 repeats do
          List.iter
            (fun jobs ->
              let trace = rep = 1 && jobs = top && (timeline || svg_file <> None) in
              let l = run_level ~trace p jobs in
              match Hashtbl.find_opt best jobs with
              | Some prev
                when prev.Observe.Scaling.v_elapsed_s
                     <= l.Observe.Scaling.v_elapsed_s ->
                  ()
              | Some _ | None -> Hashtbl.replace best jobs l)
            levels_asked
        done;
        let levels =
          List.map (fun jobs -> Hashtbl.find best jobs) levels_asked
        in
        (match Observe.Scaling.check ~program:name levels with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf
              "%s: determinism violation across the sweep: %s\n" name msg;
            exit 1);
        match Observe.Scaling.analyze ~program:name levels with
        | Error msg ->
            Printf.eprintf "%s: %s\n" name msg;
            exit 1
        | Ok a ->
            print_endline (Observe.Scaling.to_string a);
            print_newline ();
            List.iter
              (fun pair ->
                rows :=
                  Pm_corpus.Json.encode_obj
                    (Observe.Scaling.fields ~program:name pair)
                  :: !rows;
                projection_rows :=
                  Pm_corpus.Json.encode_obj
                    (Observe.Scaling.fields ~timing:false ~program:name pair)
                  :: !projection_rows)
              a.Observe.Scaling.a_levels)
      programs;
    let write_rows file lines what =
      match file with
      | None -> ()
      | Some file ->
          Yashme_util.Atomic_file.write file
            (String.concat "" (List.rev_map (fun l -> l ^ "\n") lines));
          Printf.printf "%s: %d row(s) written to %s\n" what
            (List.length lines) file
    in
    write_rows out !rows "scaling";
    write_rows projection_out !projection_rows "scaling projection";
    match (svg_file, !last_timeline) with
    | None, _ -> ()
    | Some file, Some (name, jobs, t) ->
        Yashme_util.Atomic_file.write file (Observe.Timeline.svg t);
        Printf.printf "svg: %s timeline (jobs=%d) written to %s\n" name jobs
          file
    | Some _, None ->
        Printf.eprintf "svg: no timeline was reconstructed\n";
        exit 1
  in
  let term =
    Term.(
      const run $ progs $ jobs_list_arg $ repeats_arg $ seed $ variant_arg
      $ out_arg $ projection_out_arg $ svg_arg $ timeline_flag $ quiet_flag
      $ log_level_arg)
  in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:"Sweep the exploration engine across --jobs-list levels and \
             report speedup, parallel efficiency, an Amdahl serial-fraction \
             fit and a named decomposition of lost parallel time \
             (queue-wait, snapshot copying, merge, GC); the race counts and \
             all other non-timing fields are byte-identical at every level, \
             and the sweep exits 1 if not")
    term

let runs_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LEDGER"
           ~doc:"Run ledger (JSONL, appended by --ledger).")
  in
  let run file =
    match Pm_corpus.Ledger_store.load file with
    | Error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 1
    | Ok entries ->
        let rows =
          List.mapi
            (fun i (e : Observe.Ledger.entry) ->
              [
                string_of_int (i + 1);
                e.Observe.Ledger.e_run;
                e.Observe.Ledger.e_program;
                e.Observe.Ledger.e_variant;
                e.Observe.Ledger.e_mode;
                string_of_int e.Observe.Ledger.e_jobs;
                string_of_int e.Observe.Ledger.e_scenarios;
                string_of_int e.Observe.Ledger.e_races;
                string_of_int e.Observe.Ledger.e_witnesses;
                Printf.sprintf "%.2fs" e.Observe.Ledger.e_elapsed_s;
              ])
            entries
        in
        print_endline
          (Yashme_util.Pretty.table
             ~header:
               [ "#"; "run"; "program"; "variant"; "mode"; "jobs";
                 "scenarios"; "races"; "witnesses"; "elapsed" ]
             rows);
        let sum f =
          List.fold_left (fun acc e -> acc + f e) 0 entries
        in
        let programs =
          List.sort_uniq compare
            (List.map (fun e -> e.Observe.Ledger.e_program) entries)
        in
        Printf.printf
          "\n%d run(s) over %d program(s): %d execution(s), %d race \
           finding(s), %d witness(es), %.2fs total wall\n"
          (List.length entries) (List.length programs)
          (sum (fun e -> e.Observe.Ledger.e_executions))
          (sum (fun e -> e.Observe.Ledger.e_races))
          (sum (fun e -> e.Observe.Ledger.e_witnesses))
          (List.fold_left
             (fun acc e -> acc +. e.Observe.Ledger.e_elapsed_s)
             0. entries)
  in
  Cmd.v
    (Cmd.info "runs"
       ~doc:"List the runs recorded in a ledger file (appended by --ledger), \
             with summary stats")
    Term.(const run $ file)

let compare_cmd =
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"LEDGER"
           ~doc:"Run ledger (JSONL, appended by --ledger).")
  in
  let sel ~pos:p ~docv ~doc =
    Arg.(required & pos p (some string) None & info [] ~docv ~doc)
  in
  let a =
    sel ~pos:1 ~docv:"BASELINE"
      ~doc:"Baseline run: 1-based ordinal (see $(b,yashme runs)) or unique \
            run label."
  in
  let b =
    sel ~pos:2 ~docv:"CURRENT"
      ~doc:"Current run to judge against the baseline: ordinal or label."
  in
  let run file a b =
    match Pm_corpus.Ledger_store.load file with
    | Error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 2
    | Ok entries -> (
        match
          ( Pm_corpus.Ledger_store.find entries a,
            Pm_corpus.Ledger_store.find entries b )
        with
        | Error msg, _ | _, Error msg ->
            Printf.eprintf "%s: %s\n" file msg;
            exit 2
        | Ok ea, Ok eb ->
            let c = Pm_corpus.Ledger_store.compare_runs ~baseline:ea ~current:eb in
            print_endline (Pm_corpus.Ledger_store.render ~a_label:a ~b_label:b c);
            if not c.Pm_corpus.Ledger_store.cmp_passed then exit 1)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Diff two ledger runs counter by counter (timing fields \
             informational only); exits non-zero on any non-timing delta or \
             configuration mismatch")
    Term.(const run $ file $ a $ b)

let corpus_pos ~doc =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CORPUS" ~doc)

let out_arg =
  let doc = "Write the resulting corpus to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc ~docv:"FILE")

let load_corpus_or_exit file =
  match Pm_corpus.Corpus.load file with
  | Ok ws -> ws
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
  | exception Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1

(* Corpus results go to stdout when no -o is given, so status lines go
   to stderr there; with -o, stdout carries the status. *)
let emit_corpus ~out ~status ws =
  match out with
  | Some file ->
      Pm_corpus.Corpus.save file ws;
      Printf.printf "%s -> %s\n" status file
  | None ->
      print_string (Pm_corpus.Corpus.to_jsonl ws);
      Printf.eprintf "%s\n" status

let replay_cmd =
  let file =
    corpus_pos ~doc:"Witness corpus (JSONL, written by --corpus-out)."
  in
  let run file quiet =
    Observe.Log.set_quiet quiet;
    let ws = load_corpus_or_exit file in
    let r = Pm_corpus.Replay.replay_all ~lookup ws in
    List.iter
      (fun (f : Pm_corpus.Replay.failure) ->
        Printf.printf "  [no-repro] %s %s: %s\n"
          (Pm_corpus.Witness.kind_label f.Pm_corpus.Replay.witness.Pm_corpus.Witness.kind)
          f.Pm_corpus.Replay.witness.Pm_corpus.Witness.program
          f.Pm_corpus.Replay.reason)
      r.Pm_corpus.Replay.failures;
    Printf.printf "replayed %d witness(es): %d reproduced, %d failed\n"
      r.Pm_corpus.Replay.total r.Pm_corpus.Replay.reproduced
      (List.length r.Pm_corpus.Replay.failures);
    if r.Pm_corpus.Replay.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-run every witness in a corpus; exit non-zero if any race key \
             no longer reproduces (the corpus regression gate)")
    Term.(const run $ file $ quiet_flag)

let minimize_cmd =
  let file =
    corpus_pos ~doc:"Witness corpus (JSONL, written by --corpus-out)."
  in
  let run file out quiet =
    Observe.Log.set_quiet quiet;
    let ws = load_corpus_or_exit file in
    let shrinks = Pm_corpus.Minimize.minimize_all ~lookup ws in
    let stale = ref 0 in
    List.iter
      (fun (s : Pm_corpus.Minimize.shrink) ->
        let w = s.Pm_corpus.Minimize.original in
        let m = s.Pm_corpus.Minimize.minimized in
        if not s.Pm_corpus.Minimize.reproduced then begin
          incr stale;
          Printf.eprintf "  [stale] %s %s: key %S does not reproduce\n"
            (Pm_corpus.Witness.kind_label w.Pm_corpus.Witness.kind)
            w.Pm_corpus.Witness.program w.Pm_corpus.Witness.key
        end
        else
          Printf.eprintf "  [min] %s %s: %s -> %s%s (%d run%s)\n"
            (Pm_corpus.Witness.kind_label w.Pm_corpus.Witness.kind)
            w.Pm_corpus.Witness.program
            (Pm_runtime.Executor.plan_label w.Pm_corpus.Witness.plan)
            (Pm_runtime.Executor.plan_label m.Pm_corpus.Witness.plan)
            (if s.Pm_corpus.Minimize.derandomized then ", derandomized" else "")
            s.Pm_corpus.Minimize.runs
            (if s.Pm_corpus.Minimize.runs = 1 then "" else "s"))
      shrinks;
    let minimized =
      List.map (fun s -> s.Pm_corpus.Minimize.minimized) shrinks
    in
    let status =
      Printf.sprintf "minimized %d witness(es)%s" (List.length minimized)
        (if !stale > 0 then Printf.sprintf " (%d stale, kept unchanged)" !stale
         else "")
    in
    emit_corpus ~out ~status minimized;
    if !stale > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "minimize"
       ~doc:"Shrink every witness with ddmin-style greedy steps (derandomize, \
             drop the double crash, smaller crash index, tighter fuel), \
             verifying reproduction after each step")
    Term.(const run $ file $ out_arg $ quiet_flag)

let corpus_cmd =
  let merge =
    let files =
      Arg.(non_empty & pos_all string [] & info [] ~docv:"CORPUS"
             ~doc:"Corpora to merge, in priority order.")
    in
    let run files out =
      let corpora = List.map load_corpus_or_exit files in
      let ws, folded = Pm_corpus.Corpus.merge corpora in
      let status =
        Printf.sprintf "merged %d file(s): %d witness(es), %d duplicate(s) folded"
          (List.length files) (List.length ws) folded
      in
      emit_corpus ~out ~status ws
    in
    Cmd.v
      (Cmd.info "merge"
         ~doc:"Concatenate corpora, folding duplicate identity keys (first \
               occurrence wins); merging a corpus with itself is the identity")
      Term.(const run $ files $ out_arg)
  in
  let stats =
    let files =
      Arg.(non_empty & pos_all string [] & info [] ~docv:"CORPUS"
             ~doc:"Corpora to summarize.")
    in
    let run files =
      let corpora = List.map load_corpus_or_exit files in
      let ws, folded = Pm_corpus.Corpus.merge corpora in
      Format.printf "%a@." Pm_corpus.Corpus.pp_stats
        (Pm_corpus.Corpus.stats ~duplicates_folded:folded ws)
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Summarize a corpus (counts per kind and program)")
      Term.(const run $ files)
  in
  Cmd.group
    (Cmd.info "corpus" ~doc:"Manage witness corpora (merge, stats)")
    [ merge; stats ]

let variants_cmd =
  let run () =
    List.iter
      (fun (name, v, desc) ->
        Printf.printf "%-16s%s %s\n" name
          (if Px86.Variant.is_default v then " (default)" else "")
          desc;
        Printf.printf "%-16s  %s\n" "" (Px86.Variant.field_form v))
      Px86.Variant.builtins
  in
  Cmd.v
    (Cmd.info "variants"
       ~doc:"List the built-in persistency-model variants (for --variant)")
    Term.(const run $ const ())

let litmus_cmd =
  let expect =
    let doc = "Golden matrix file to compare against (byte comparison after \
               trailing-newline normalization); exits non-zero on mismatch.  \
               CI pins $(b,LITMUS_matrix.txt) this way." in
    Arg.(value & opt (some string) None & info [ "expect" ] ~doc ~docv:"FILE")
  in
  let run jobs expect quiet =
    Observe.Log.set_quiet quiet;
    let m = Pm_benchmarks.Litmus.run_matrix ~jobs () in
    let rendered = Pm_benchmarks.Litmus.render m in
    print_endline rendered;
    Printf.printf
      "\n%d litmus case(s) x %d variant(s); '*' marks divergence from strict-tso\n"
      (List.length m.Pm_benchmarks.Litmus.m_rows)
      (List.length m.Pm_benchmarks.Litmus.m_variants);
    match expect with
    | None -> ()
    | Some file -> (
        match In_channel.with_open_bin file In_channel.input_all with
        | exception Sys_error msg ->
            Printf.eprintf "%s\n" msg;
            exit 2
        | golden ->
            let strip s = String.trim s in
            if strip golden = strip rendered then
              Printf.printf "matrix matches %s\n" file
            else begin
              Printf.eprintf
                "litmus matrix DIVERGES from %s — the persistency-model \
                 semantics changed.\nRegenerate with `yashme litmus > %s` if \
                 the change is intended.\n"
                file file;
              exit 1
            end)
  in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:"Run the litmus suite across every built-in variant and print the \
             divergence matrix (race findings per litmus program x variant)")
    Term.(const run $ jobs $ expect $ quiet_flag)

let tables_cmd =
  let run () =
    print_endline "Table 1: Px86 reordering constraints";
    print_endline (Px86.Reorder.table ());
    print_newline ();
    print_endline "Table 2a: compiler store optimizations";
    print_endline (Pm_compiler.Passes.table_2a ());
    print_newline ();
    print_endline "Table 2b: source vs assembly memory operations (clang -O3, x86-64)";
    print_endline (Pm_compiler.Programs.table_2b ())
  in
  Cmd.v (Cmd.info "tables" ~doc:"Print the static tables (1, 2a, 2b)")
    Term.(const run $ const ())

let soak_cmd =
  let streams_pos =
    Arg.(value & pos_all string [] & info [] ~docv:"STREAM"
           ~doc:"Op streams to soak (default: memcached, redis and cceh; \
                 $(b,demo-storm) is findable too, for quarantine demos).")
  in
  let soak_max_ops =
    let doc = "Total client-op budget: stop the service (soak_ok) once \
               $(docv) randomized client operations have been streamed.  \
               Deterministic: the same budget stops at the same round on \
               every run and every --jobs count." in
    Arg.(value & opt (some int) None & info [ "max-ops" ] ~doc ~docv:"N")
  in
  let wall_s_arg =
    let doc = "Wall-clock budget for this invocation, in seconds, checked at \
               round boundaries.  Stopping is still clean (soak_ok) but the \
               stop point is nondeterministic; prefer --max-ops when runs \
               must be comparable." in
    Arg.(value & opt (some float) None & info [ "wall-s" ] ~doc ~docv:"SECONDS")
  in
  let fault_budget_arg =
    let doc = "Faulted scenarios tolerated per (stream x mix x distribution) \
               combo before it is quarantined: the service logs the combo, \
               stops scheduling it and keeps soaking the rest instead of \
               aborting on a fault storm." in
    Arg.(value & opt int 3 & info [ "fault-budget" ] ~doc ~docv:"N")
  in
  let ops_per_exec_arg =
    let doc = "Randomized client operations streamed per failure scenario." in
    Arg.(value & opt int 24 & info [ "ops-per-exec" ] ~doc ~docv:"N")
  in
  let checkpoint_every_arg =
    let doc = "Rounds between periodic checkpoints (corpus + manifest, both \
               written crash-safely via tmp + atomic rename); 0 disables \
               periodic checkpoints (the final flush still happens)." in
    Arg.(value & opt int 10 & info [ "checkpoint-every" ] ~doc ~docv:"ROUNDS")
  in
  let manifest_arg =
    let doc = "Write the versioned run manifest to $(docv) (one flat JSON \
               line: seed, budgets, variant, snapshot, coverage digest, \
               soak_ok marker).  Updated at every checkpoint and at exit; \
               resume from it with $(b,--resume)." in
    Arg.(value & opt (some string) None & info [ "manifest" ] ~doc ~docv:"FILE")
  in
  let resume_arg =
    let doc = "Resume from a checkpoint manifest: configuration (streams, \
               seed, variant, budgets) is taken from $(docv), the checkpoint \
               corpus is preloaded, and rounds continue from the recorded \
               snapshot with identical derived seeds — the resumed run \
               produces the same witnesses the uninterrupted run would have." in
    Arg.(value & opt (some string) None & info [ "resume" ] ~doc ~docv:"MANIFEST")
  in
  let stop_after_arg =
    let doc = "Cooperatively stop after $(docv) rounds of this invocation, as \
               if SIGINT had arrived (flushes a final checkpoint with \
               soak_ok=false).  For tests and CI resume exercises." in
    Arg.(value & opt (some int) None & info [ "stop-after" ] ~doc ~docv:"ROUNDS")
  in
  let stream_names streams =
    List.map (fun s -> s.Pm_harness.Soak.os_name) streams
  in
  let resolve_streams names =
    List.map
      (fun n ->
        match Pm_benchmarks.Registry.find_soak_stream n with
        | Some s -> s
        | None ->
            Printf.eprintf
              "unknown soak stream %S (try memcached, redis, cceh or demo-storm)\n"
              n;
            exit 1)
      names
  in
  (* All coverage buckets are combo labels (seed-free), so the digest
     stays bounded and two same-seed runs digest identically. *)
  let coverage_digest () =
    match Observe.Coverage.snapshot () with
    | [] -> ""
    | stats ->
        Observe.Ledger.digest_string
          (String.concat "\n"
             (List.map
                (fun s ->
                  Pm_corpus.Json.encode_obj (Observe.Coverage.fields s))
                stats))
  in
  let go ~streams ~seed ~variant ~jobs ~ops_per_exec ~fault_budget ~max_ops
      ~wall_s ~checkpoint_every ~manifest_path ~corpus_path ~resume_snapshot
      ~preload ~stop_after ~oracle ~quiet ~log_level ~progress ~progress_out
      ~coverage_out ~attribution_out ~ledger ~run_label ~trace_out =
    let collect_metrics = ledger <> None in
    let collect_att = attribution_out <> None || ledger <> None in
    observe_setup ~log_level ~coverage:true ~progress ~progress_out
      ~metrics:collect_metrics ~attribution:collect_att ~trace_out ~quiet ();
    let before = if collect_metrics then Observe.Metrics.snapshot () else [] in
    let att_before =
      if collect_att then Observe.Attribution.snapshot () else []
    in
    let sink = Pm_corpus.Soak_store.sink () in
    Pm_corpus.Soak_store.preload sink preload;
    let run_name =
      Option.value run_label
        ~default:("soak:" ^ String.concat "," (stream_names streams))
    in
    let cfg =
      {
        (Pm_harness.Soak.default_config ~streams) with
        Pm_harness.Soak.sk_options =
          { Pm_harness.Scenario.default_options with seed; variant };
        sk_jobs = jobs;
        sk_ops_per_exec = ops_per_exec;
        sk_fault_budget = fault_budget;
        sk_max_ops = max_ops;
        sk_wall_s = wall_s;
        sk_checkpoint_every = checkpoint_every;
        sk_oracle = oracle;
      }
    in
    let manifest_of ~soak_ok ~stopped ~elapsed snap =
      {
        Pm_corpus.Soak_store.m_run = run_name;
        m_streams = stream_names streams;
        m_seed = seed;
        m_variant = Px86.Variant.label variant;
        m_jobs = jobs;
        m_ops_per_exec = ops_per_exec;
        m_fault_budget = fault_budget;
        m_max_ops = max_ops;
        m_wall_s = wall_s;
        m_checkpoint_every = checkpoint_every;
        m_corpus = Option.value corpus_path ~default:"";
        m_snapshot = snap;
        m_witnesses = List.length (Pm_corpus.Soak_store.witnesses sink);
        m_raw = Pm_corpus.Soak_store.raw sink;
        m_duplicates = Pm_corpus.Soak_store.duplicates sink;
        m_coverage_digest = coverage_digest ();
        m_soak_ok = soak_ok;
        m_stopped = stopped;
        m_ts = Unix.gettimeofday ();
        m_elapsed_s = elapsed;
      }
    in
    (* One checkpoint = corpus (only once non-empty) + manifest, each
       atomic, corpus first so a manifest never references witnesses
       that were not yet durable. *)
    let flush ~soak_ok ~stopped ~elapsed snap =
      (match corpus_path with
      | Some file ->
          let ws = Pm_corpus.Soak_store.witnesses sink in
          if ws <> [] then Pm_corpus.Corpus.save file ws
      | None -> ());
      match manifest_path with
      | Some file ->
          Pm_corpus.Soak_store.save file
            (manifest_of ~soak_ok ~stopped ~elapsed snap)
      | None -> ()
    in
    let t_start = Unix.gettimeofday () in
    let rounds = ref 0 in
    let on_batch triples =
      Pm_corpus.Soak_store.absorb sink triples;
      incr rounds;
      match stop_after with
      | Some n when !rounds >= n -> Pm_harness.Soak.request_stop ()
      | _ -> ()
    in
    let on_checkpoint snap =
      flush ~soak_ok:false ~stopped:"running"
        ~elapsed:(Unix.gettimeofday () -. t_start)
        snap
    in
    let prev =
      Sys.signal Sys.sigint
        (Sys.Signal_handle (fun _ -> Pm_harness.Soak.request_stop ()))
    in
    let result =
      Fun.protect
        ~finally:(fun () -> Sys.set_signal Sys.sigint prev)
        (fun () ->
          Pm_harness.Soak.run ?resume:resume_snapshot ~on_batch ~on_checkpoint
            cfg)
    in
    finish_progress ();
    let reason = Pm_harness.Soak.stop_reason_label result.Pm_harness.Soak.r_reason in
    flush ~soak_ok:result.Pm_harness.Soak.r_ok ~stopped:reason
      ~elapsed:result.Pm_harness.Soak.r_elapsed_s
      result.Pm_harness.Soak.r_snapshot;
    let snap = result.Pm_harness.Soak.r_snapshot in
    let ws = Pm_corpus.Soak_store.witnesses sink in
    let count k =
      List.length (List.filter (fun w -> w.Pm_corpus.Witness.kind = k) ws)
    in
    let race_ws = count Pm_corpus.Witness.Race in
    let rf_ws = count Pm_corpus.Witness.Recovery_failure in
    let cv_ws = count Pm_corpus.Witness.Consistency_violation in
    Printf.printf
      "soak %s: stopped (%s) after %d round(s): %d scenario(s), %d client \
       op(s), %d execution(s)\n"
      run_name reason snap.Pm_harness.Soak.snap_next_round
      snap.Pm_harness.Soak.snap_scenarios snap.Pm_harness.Soak.snap_client_ops
      snap.Pm_harness.Soak.snap_executions;
    (* The consistency-violation count is appended only when the oracle
       found any, keeping oracle-off output byte-identical. *)
    Printf.printf
      "  %d raw race observation(s) -> %d witness(es) (%d race, %d \
       recovery-failure%s); %d faulted, %d diverged\n"
      snap.Pm_harness.Soak.snap_races (List.length ws) race_ws rf_ws
      (if cv_ws > 0 then Printf.sprintf ", %d consistency-violation" cv_ws
       else "")
      snap.Pm_harness.Soak.snap_faulted snap.Pm_harness.Soak.snap_diverged;
    List.iter
      (fun b ->
        if b.Pm_harness.Soak.bs_quarantined then
          Printf.printf "  [quarantined] %s (%d fault(s))\n"
            b.Pm_harness.Soak.bs_combo b.Pm_harness.Soak.bs_faults)
      snap.Pm_harness.Soak.snap_buckets;
    (match corpus_path with
    | Some file when ws <> [] ->
        Printf.printf "corpus: %d witness(es) written to %s\n" (List.length ws)
          file
    | _ -> ());
    (match manifest_path with
    | Some file -> Printf.printf "manifest: %s\n" file
    | None -> ());
    Printf.printf "soak_ok: %b\n" result.Pm_harness.Soak.r_ok;
    write_coverage_file coverage_out;
    if collect_att then
      write_attribution_file
        (Observe.Attribution.diff att_before (Observe.Attribution.snapshot ()))
        attribution_out;
    (match ledger with
    | None -> ()
    | Some file ->
        let entry =
          {
            Observe.Ledger.e_version = Observe.Ledger.version;
            e_run = run_name;
            e_ts = Unix.gettimeofday ();
            e_program = run_name;
            e_variant = Px86.Variant.label variant;
            e_mode = "soak";
            e_jobs = jobs;
            e_seed = seed;
            e_scenarios = snap.Pm_harness.Soak.snap_scenarios;
            e_completed = snap.Pm_harness.Soak.snap_completed;
            e_faulted = snap.Pm_harness.Soak.snap_faulted;
            e_diverged = snap.Pm_harness.Soak.snap_diverged;
            e_executions = snap.Pm_harness.Soak.snap_executions;
            e_ops = snap.Pm_harness.Soak.snap_ops;
            e_races = race_ws;
            e_benign = 0;
            e_raw_races = snap.Pm_harness.Soak.snap_races;
            e_recovery_failures = rf_ws;
            e_witnesses = List.length ws;
            e_elapsed_s = result.Pm_harness.Soak.r_elapsed_s;
            e_cpu_s = 0.;
            e_metrics_digest =
              Observe.Ledger.digest_counters
                (Observe.Metrics.diff before (Observe.Metrics.snapshot ()));
            e_coverage_digest = coverage_digest ();
            e_cost =
              Observe.Ledger.costs_of_rows
                (if collect_att then
                   Observe.Attribution.diff att_before
                     (Observe.Attribution.snapshot ())
                 else []);
          }
        in
        Pm_corpus.Ledger_store.append file entry;
        Printf.printf "ledger: run %S appended to %s\n" run_name file);
    write_trace trace_out;
    if not result.Pm_harness.Soak.r_ok then exit 1
  in
  let run streams_pos seed jobs variant max_ops wall_s fault_budget
      ops_per_exec checkpoint_every manifest_path resume stop_after oracle
      corpus_out quiet log_level progress progress_out coverage_out
      attribution_out ledger run_label trace_out =
    match resume with
    | None ->
        let names =
          if streams_pos = [] then
            stream_names Pm_benchmarks.Registry.soak_streams
          else streams_pos
        in
        go ~streams:(resolve_streams names) ~seed ~variant ~jobs ~ops_per_exec
          ~fault_budget ~max_ops ~wall_s ~checkpoint_every ~manifest_path
          ~corpus_path:corpus_out ~resume_snapshot:None ~preload:[] ~stop_after
          ~oracle ~quiet ~log_level ~progress ~progress_out ~coverage_out
          ~attribution_out ~ledger ~run_label ~trace_out
    | Some mf_path -> (
        match Pm_corpus.Soak_store.load mf_path with
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            exit 1
        | Ok m ->
            let variant =
              match Px86.Variant.of_label m.Pm_corpus.Soak_store.m_variant with
              | Some v -> v
              | None ->
                  Printf.eprintf "%s: unknown variant %S in manifest\n" mf_path
                    m.Pm_corpus.Soak_store.m_variant;
                  exit 1
            in
            (* Configuration comes from the manifest — a resumed run is
               the same run.  Its corpus is preloaded so the dedup sink
               suppresses re-observations, only when the manifest says
               witnesses were actually written. *)
            let preload =
              if
                m.Pm_corpus.Soak_store.m_witnesses > 0
                && m.Pm_corpus.Soak_store.m_corpus <> ""
              then load_corpus_or_exit m.Pm_corpus.Soak_store.m_corpus
              else []
            in
            go
              ~streams:(resolve_streams m.Pm_corpus.Soak_store.m_streams)
              ~seed:m.Pm_corpus.Soak_store.m_seed ~variant
              ~jobs:m.Pm_corpus.Soak_store.m_jobs
              ~ops_per_exec:m.Pm_corpus.Soak_store.m_ops_per_exec
              ~fault_budget:m.Pm_corpus.Soak_store.m_fault_budget
              ~max_ops:m.Pm_corpus.Soak_store.m_max_ops
              ~wall_s:m.Pm_corpus.Soak_store.m_wall_s
              ~checkpoint_every:m.Pm_corpus.Soak_store.m_checkpoint_every
              ~manifest_path:(Some mf_path)
              ~corpus_path:
                (if m.Pm_corpus.Soak_store.m_corpus = "" then corpus_out
                 else Some m.Pm_corpus.Soak_store.m_corpus)
              ~resume_snapshot:(Some m.Pm_corpus.Soak_store.m_snapshot)
              ~preload ~stop_after ~oracle ~quiet ~log_level ~progress
              ~progress_out ~coverage_out ~attribution_out ~ledger
              ~run_label:(Some m.Pm_corpus.Soak_store.m_run)
              ~trace_out)
  in
  let term =
    Term.(
      const run $ streams_pos $ seed $ jobs $ variant_arg $ soak_max_ops
      $ wall_s_arg $ fault_budget_arg $ ops_per_exec_arg
      $ checkpoint_every_arg $ manifest_arg $ resume_arg $ stop_after_arg
      $ oracle_flag $ corpus_out $ quiet_flag $ log_level_arg $ progress_flag
      $ progress_out $ coverage_out $ attribution_out $ ledger_arg
      $ run_label_arg $ trace_out)
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:"Long-running crash-testing service: stream randomized client \
             ops through continuous crash/recover cycles under hard budgets, \
             with crash-safe checkpoint/resume, per-combo fault quarantine \
             and clean SIGINT handling")
    term

let oracle_cmd =
  let bench =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH"
           ~doc:"Benchmark name (see $(b,yashme list)); must expose an \
                 observe hook.")
  in
  let find_observed bench =
    match Pm_benchmarks.Registry.find bench with
    | exception Not_found ->
        Printf.eprintf "unknown benchmark %S; try `yashme list'\n" bench;
        exit 1
    | p ->
        if p.Pm_harness.Program.observe = None then begin
          Printf.eprintf
            "benchmark %S has no observe hook; the oracle needs one to \
             snapshot recovered state\n"
            bench;
          exit 1
        end;
        p
  in
  let prepare ~seed ~variant p =
    let opts = { Pm_harness.Runner.default_options with seed; variant } in
    match Pm_harness.Runner.prepare_oracle ~options:opts p with
    | Some prep -> prep
    | None -> assert false (* find_observed checked the hook *)
  in
  let infer_cmd =
    let out_arg =
      let doc = "Write the inferred invariant set to $(docv) (one invariant \
                 per line, crash-safe tmp + atomic rename) instead of \
                 stdout.  Feed it back with $(b,yashme oracle check \
                 --invariants)." in
      Arg.(value & opt (some string) None & info [ "o"; "out" ] ~doc ~docv:"FILE")
    in
    let run bench seed variant out =
      let p = find_observed bench in
      let prep = prepare ~seed ~variant p in
      let lines =
        Pm_oracle.Invariant.to_lines
          prep.Pm_harness.Runner.op_invariants
      in
      match out with
      | None -> print_string lines
      | Some file ->
          Yashme_util.Atomic_file.write file lines;
          Printf.printf "oracle: %d invariant(s) written to %s\n"
            (List.length prep.Pm_harness.Runner.op_invariants)
            file
    in
    Cmd.v
      (Cmd.info "infer"
         ~doc:"Infer likely persistence invariants (ordering, same-line \
               atomicity) from a crash-free reference execution")
      Term.(const run $ bench $ seed $ variant_arg $ out_arg)
  in
  let check_cmd =
    let invariants_arg =
      let doc = "Check against the invariant set in $(docv) (the $(b,yashme \
                 oracle infer -o) format) instead of inferring one from the \
                 reference execution." in
      Arg.(value & opt (some string) None
             & info [ "invariants" ] ~doc ~docv:"FILE")
    in
    let run bench seed variant jobs invariants_file =
      let p = find_observed bench in
      let invariants =
        match invariants_file with
        | None -> None
        | Some file -> (
            let text =
              match In_channel.with_open_text file In_channel.input_all with
              | text -> text
              | exception Sys_error msg ->
                  Printf.eprintf "%s\n" msg;
                  exit 1
            in
            match Pm_oracle.Invariant.of_lines text with
            | Ok invs -> Some invs
            | Error msg ->
                Printf.eprintf "%s: %s\n" file msg;
                exit 1)
      in
      let opts = { Pm_harness.Runner.default_options with seed; variant } in
      let o =
        Pm_harness.Runner.model_check_outcome ~options:opts ~jobs ~oracle:true
          ?invariants p
      in
      let r = o.Pm_harness.Runner.o_report in
      print_report false r;
      print_endline (Pm_harness.Report.oracle_to_string r);
      if r.Pm_harness.Report.consistency_violations <> [] then exit 1
    in
    Cmd.v
      (Cmd.info "check"
         ~doc:"Model-check one benchmark with the invariant oracle attached; \
               exit 1 when the oracle reports a consistency violation")
      Term.(const run $ bench $ seed $ variant_arg $ jobs $ invariants_arg)
  in
  Cmd.group
    (Cmd.info "oracle"
       ~doc:"Crash-consistency invariant oracle: infer likely persistence \
             invariants from crash-free reference executions and diff \
             post-crash-recovery state against them")
    [ infer_cmd; check_cmd ]

let main =
  let doc = "Yashme: detecting persistency races (ASPLOS 2022 reproduction)" in
  Cmd.group (Cmd.info "yashme" ~version:"1.0.0" ~doc)
    [ list_cmd; check_cmd; check_all_cmd; soak_cmd; tables_cmd; witness_cmd;
      variants_cmd; litmus_cmd; oracle_cmd; trace_lint_cmd; profile_cmd;
      scaling_cmd; bench_diff_cmd; runs_cmd; compare_cmd; replay_cmd;
      minimize_cmd; corpus_cmd ]

let () = exit (Cmd.eval main)
